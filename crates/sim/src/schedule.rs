//! Deterministic commit-schedule rig for the group-commit WAL (§4.3.1).
//!
//! Group formation is a race — committers arrive while a leader decides
//! whether to drain — so real-time tests of it are inherently flaky and
//! cannot pin down *which* batch a commit lands in. This rig removes the
//! clock from the protocol instead of the protocol from the test:
//!
//! 1. [`LogManager::set_linger_hold`] freezes the linger window, so an
//!    elected leader parks on the condvar rather than a timeout.
//! 2. The driver thread appends every committer's `Begin`+`Commit` records
//!    itself, in script order — record bytes never depend on the OS
//!    scheduler.
//! 3. One worker thread per committer registers a `force_to`; the driver
//!    releases the hold only after [`LogManager::pending_forces`] shows the
//!    whole cohort parked behind the window.
//!
//! The result: each scripted group drains as exactly one
//! [`LogStore::append`], and the durable byte stream, batch boundaries, and
//! append count are a pure function of the schedule — byte-for-byte
//! reproducible under a fixed seed, which is what the crash windows opened
//! by early lock release need from their gate.

use pitree_pagestore::sync::Mutex;
use pitree_pagestore::{Lsn, StoreError, StoreResult};
use pitree_wal::{ActionId, ActionIdentity, LogManager, LogStore, MemLogStore, RecordKind};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::SimRng;

/// One scripted group: committer ids whose commits arrive within a single
/// held linger window and must land in one [`LogStore::append`].
pub type Group = Vec<u64>;

/// A [`LogStore`] wrapper that counts appends and records each batch's
/// byte length, so schedule tests can assert exactly how commits grouped.
pub struct CountingStore {
    inner: MemLogStore,
    appends: AtomicU64,
    batch_lens: Mutex<Vec<usize>>,
}

impl std::fmt::Debug for CountingStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CountingStore").finish_non_exhaustive()
    }
}

impl CountingStore {
    /// An empty counting store.
    pub fn new() -> CountingStore {
        CountingStore {
            inner: MemLogStore::new(),
            appends: AtomicU64::new(0),
            batch_lens: Mutex::new(Vec::new()),
        }
    }

    /// Number of batches appended so far.
    pub fn appends(&self) -> u64 {
        self.appends.load(Ordering::SeqCst)
    }

    /// Byte length of every batch appended, in order.
    pub fn batch_lens(&self) -> Vec<usize> {
        self.batch_lens.lock().clone()
    }
}

impl Default for CountingStore {
    fn default() -> Self {
        Self::new()
    }
}

impl LogStore for CountingStore {
    fn append(&self, bytes: &[u8]) -> StoreResult<()> {
        self.inner.append(bytes)?;
        self.appends.fetch_add(1, Ordering::SeqCst);
        self.batch_lens.lock().push(bytes.len());
        Ok(())
    }
    fn durable_bytes(&self) -> StoreResult<Vec<u8>> {
        self.inner.durable_bytes()
    }
    fn durable_len(&self) -> u64 {
        self.inner.durable_len()
    }
    fn set_master(&self, lsn: Lsn) {
        self.inner.set_master(lsn)
    }
    fn master(&self) -> Lsn {
        self.inner.master()
    }
    fn read_range(&self, offset: u64, len: usize) -> StoreResult<Vec<u8>> {
        self.inner.read_range(offset, len)
    }
}

/// Everything a schedule run produces, for exact comparison across runs.
#[derive(Debug, PartialEq, Eq)]
pub struct ScheduleOutcome {
    /// Full durable log bytes at the end of the run.
    pub durable: Vec<u8>,
    /// Byte length of each batch handed to the store, in script order.
    pub batch_lens: Vec<usize>,
    /// Store appends observed (`== batch_lens.len()`).
    pub appends: u64,
}

/// Derive a committer-arrival schedule from `seed`: `groups` rounds, each
/// with `1..=max_group` distinct committers. Same seed, same schedule.
pub fn gen_schedule(seed: u64, groups: usize, max_group: usize) -> Vec<Group> {
    let mut rng = SimRng::new(seed);
    let mut next_id = 1u64;
    (0..groups)
        .map(|_| {
            let k = rng.range_usize(1..max_group.max(1) + 1);
            (0..k)
                .map(|_| {
                    let id = next_id;
                    next_id += 1;
                    id
                })
                .collect()
        })
        .collect()
}

/// Execute `schedule` against a fresh [`LogManager`] over a
/// [`CountingStore`], one held linger window per group, and check that
/// every group drained as a single store append. Returns the run's
/// [`ScheduleOutcome`] for byte-for-byte comparison.
pub fn run_schedule(schedule: &[Group]) -> StoreResult<ScheduleOutcome> {
    let store = Arc::new(CountingStore::new());
    let log = Arc::new(LogManager::open(Arc::clone(&store) as Arc<dyn LogStore>)?);
    for group in schedule {
        if group.is_empty() {
            continue;
        }
        let before = store.appends();
        log.set_linger_hold(true);
        // The driver appends all records itself: byte order is script order.
        let lsns: Vec<Lsn> = group
            .iter()
            .map(|&c| {
                let action = ActionId(c);
                let b = log.append(
                    action,
                    Lsn::ZERO,
                    RecordKind::Begin {
                        identity: ActionIdentity::SeparateTransaction,
                    },
                );
                log.append(action, b, RecordKind::Commit)
            })
            .collect();
        std::thread::scope(|s| -> StoreResult<()> {
            let workers: Vec<_> = lsns
                .iter()
                .map(|&lsn| {
                    let log = Arc::clone(&log);
                    s.spawn(move || log.force_to(lsn))
                })
                .collect();
            // Open the window only once the whole cohort is parked behind it.
            while log.pending_forces() < group.len() as u64 {
                std::thread::yield_now();
            }
            log.set_linger_hold(false);
            for w in workers {
                w.join()
                    .map_err(|_| StoreError::Corrupt("schedule worker panicked".into()))??;
            }
            Ok(())
        })?;
        let wrote = store.appends() - before;
        if wrote != 1 {
            return Err(StoreError::Corrupt(format!(
                "scripted group of {} committers split into {wrote} appends",
                group.len()
            )));
        }
    }
    Ok(ScheduleOutcome {
        durable: store.durable_bytes()?,
        batch_lens: store.batch_lens(),
        appends: store.appends(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gen_schedule_is_seed_deterministic() {
        let a = gen_schedule(7, 10, 5);
        let b = gen_schedule(7, 10, 5);
        assert_eq!(a, b);
        assert_eq!(a.len(), 10);
        assert!(a.iter().all(|g| (1..=5).contains(&g.len())));
        assert_ne!(gen_schedule(8, 10, 5), a);
    }

    #[test]
    fn singleton_schedule_runs() {
        let out = run_schedule(&[vec![1]]).unwrap();
        assert_eq!(out.appends, 1);
        assert_eq!(out.batch_lens.len(), 1);
    }
}
