//! The kit's acceptance sweep: 64 distinct seeds of crash–recover–verify,
//! jointly covering well over 100 injected crash points, plus a multi-seed
//! schedule shake. Any failing seed is printed by the property runner and
//! replayable with `PITREE_SIM_SEED=<seed>`.

use pitree_sim::{crash, prop, shake};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

#[test]
fn crash_recover_verify_64_seeds() {
    let seeds = AtomicUsize::new(0);
    let points = AtomicUsize::new(0);
    let boundary_space = AtomicU64::new(0);
    prop::run_cases("crash_recover_verify_sweep", 64, |rng| {
        let seed = rng.next_u64();
        let cfg = crash::CrashConfig::default();
        let report = crash::crash_recover_verify(seed, &cfg);
        seeds.fetch_add(1, Ordering::Relaxed);
        points.fetch_add(report.crash_points_tested, Ordering::Relaxed);
        boundary_space.fetch_add(report.fault_points, Ordering::Relaxed);
    });
    eprintln!(
        "crash sweep: {} seeds, {} crash points tested, {} durability boundaries seen",
        seeds.load(Ordering::Relaxed),
        points.load(Ordering::Relaxed),
        boundary_space.load(Ordering::Relaxed),
    );
    // Guard the acceptance floor — but only when running the full default
    // corpus (replaying one seed or scaling cases legitimately changes it).
    // pitree-lint: allow(determinism) reads the replay knobs only to skip acceptance floors during manual replays
    if std::env::var("PITREE_SIM_SEED").is_err() && std::env::var("PITREE_SIM_CASES").is_err() {
        assert_eq!(seeds.load(Ordering::Relaxed), 64);
        let tested = points.load(Ordering::Relaxed);
        assert!(
            tested >= 100,
            "swept only {tested} crash points across 64 seeds"
        );
    }
}

#[test]
fn schedule_shake_multi_seed() {
    let postings = AtomicU64::new(0);
    prop::run_cases("schedule_shake", 8, |rng| {
        let seed = rng.next_u64();
        let cfg = shake::ShakeConfig {
            ops_per_thread: 80,
            ..shake::ShakeConfig::default()
        };
        let report = shake::shake(seed, &cfg);
        postings.fetch_add(report.postings_scheduled, Ordering::Relaxed);
    });
    // pitree-lint: allow(determinism) reads the replay knobs only to skip acceptance floors during manual replays
    if std::env::var("PITREE_SIM_SEED").is_err() && std::env::var("PITREE_SIM_CASES").is_err() {
        assert!(
            postings.load(Ordering::Relaxed) > 0,
            "the shakes must interleave structure changes"
        );
    }
}
