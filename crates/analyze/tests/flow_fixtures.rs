//! Fixture triplets for the four pitree-flow rules: each rule has a firing
//! case (fails the gate if the check is ever stubbed out — the
//! no-blind-oracle discipline), a quiet case (the disciplined shape), and
//! a suppressed case (`allow(...)` consumes the finding and is itself
//! marked used, so it does not go stale).
//!
//! The firing cases are chosen so the *token* tier cannot see them: the
//! violation hides behind a branch, a call chain, or a guard move —
//! exactly what the CFG + call-graph analysis exists to catch.

use analyze::{lint_source, scan_sources, RuleId};

fn scan(files: &[(&str, &str)]) -> analyze::Report {
    let owned: Vec<(String, String)> = files
        .iter()
        .map(|(p, s)| (p.to_string(), s.to_string()))
        .collect();
    scan_sources(&owned)
}

fn rules_of(findings: &[analyze::Finding]) -> Vec<RuleId> {
    findings.iter().map(|f| f.rule).collect()
}

// ---- latch-cycle (§4.1) ---------------------------------------------------

#[test]
fn latch_cycle_fires_on_inverted_acquisition_order() {
    // One function latches page-then-alloc, another alloc-then-page: no
    // global acquisition order exists, which is a potential deadlock no
    // single function exhibits. Each function alone passes every token
    // rule.
    let report = scan(&[(
        "crates/core/src/fake.rs",
        "pub fn forward(pin: &Pin, store: &Store) {\n\
         \x20   let g = pin.x();\n\
         \x20   let alloc = store.space.lock_alloc();\n\
         }\n\
         pub fn backward(pin: &Pin, store: &Store) {\n\
         \x20   let alloc = store.space.lock_alloc();\n\
         \x20   let g = pin.x();\n\
         }\n",
    )]);
    assert!(
        rules_of(&report.findings).contains(&RuleId::LatchCycle),
        "{:?}",
        report.findings
    );
    assert!(report.latch_dot.contains("// acyclic: false"));
}

#[test]
fn latch_cycle_quiet_on_stratified_order() {
    let report = scan(&[(
        "crates/core/src/fake.rs",
        "pub fn forward(pin: &Pin, store: &Store) {\n\
         \x20   let g = pin.x();\n\
         \x20   let alloc = store.space.lock_alloc();\n\
         }\n",
    )]);
    assert!(report.clean(), "{:?}", report.findings);
    assert!(report.latch_dot.contains("// acyclic: true"));
    assert!(report.latch_dot.contains("\"node\" -> \"alloc\""));
}

#[test]
fn latch_cycle_try_edges_are_dashed_and_exempt() {
    // A try_-acquisition against the order is the paper's own sanctioned
    // climb shape (§5.2.2b): rendered dashed, excluded from the check.
    let report = scan(&[(
        "crates/core/src/fake.rs",
        "pub fn forward(pin: &Pin, store: &Store) {\n\
         \x20   let g = pin.x();\n\
         \x20   let alloc = store.space.lock_alloc();\n\
         }\n\
         pub fn climb(pin: &Pin, store: &Store) {\n\
         \x20   let alloc = store.space.lock_alloc();\n\
         \x20   let g = pin.try_x();\n\
         }\n",
    )]);
    assert!(report.clean(), "{:?}", report.findings);
    assert!(report.latch_dot.contains("// acyclic: true"));
    assert!(report.latch_dot.contains("style=dashed"));
}

#[test]
fn latch_cycle_suppressed_edge_is_out_of_the_check_and_not_stale() {
    let report = scan(&[(
        "crates/core/src/fake.rs",
        "pub fn forward(pin: &Pin, store: &Store) {\n\
         \x20   let g = pin.x();\n\
         \x20   let alloc = store.space.lock_alloc();\n\
         }\n\
         pub fn backward(pin: &Pin, store: &Store) {\n\
         \x20   let alloc = store.space.lock_alloc();\n\
         \x20   // pitree-lint: allow(latch-cycle) fixture: edge vetted by hand\n\
         \x20   let g = pin.x();\n\
         }\n",
    )]);
    assert!(report.clean(), "{:?}", report.findings);
    assert!(report.latch_dot.contains("// acyclic: true"));
    assert_eq!(report.allowed.get(&RuleId::LatchCycle), Some(&1));
}

// ---- guard-lifetime -------------------------------------------------------

#[test]
fn guard_lifetime_fires_on_wait_while_latched() {
    let f = lint_source(
        "crates/core/src/fake.rs",
        "pub fn publish(pin: &Pin, wal: &Wal) {\n\
         \x20   let g = pin.x();\n\
         \x20   wal.force();\n\
         \x20   drop(g);\n\
         }\n",
    );
    assert!(rules_of(&f).contains(&RuleId::GuardLifetime), "{f:?}");
}

#[test]
fn guard_lifetime_fires_on_wait_with_guard_held_on_one_path_only() {
    // The else path drops the guard; the then path still holds it across
    // the force. A linear scan sees a drop "before" the wait.
    let f = lint_source(
        "crates/core/src/fake.rs",
        "pub fn publish(pin: &Pin, wal: &Wal, fast: bool) {\n\
         \x20   let g = pin.x();\n\
         \x20   if fast {\n\
         \x20       g.touch();\n\
         \x20   } else {\n\
         \x20       drop(g);\n\
         \x20   }\n\
         \x20   wal.force();\n\
         }\n",
    );
    assert!(rules_of(&f).contains(&RuleId::GuardLifetime), "{f:?}");
}

#[test]
fn guard_lifetime_fires_on_forget_leak() {
    let f = lint_source(
        "crates/core/src/fake.rs",
        "pub fn leak(pin: &Pin) {\n\
         \x20   let g = pin.x();\n\
         \x20   forget(g);\n\
         }\n",
    );
    assert!(rules_of(&f).contains(&RuleId::GuardLifetime), "{f:?}");
}

#[test]
fn guard_lifetime_fires_on_double_drop() {
    let f = lint_source(
        "crates/core/src/fake.rs",
        "pub fn twice(pin: &Pin) {\n\
         \x20   let g = pin.x();\n\
         \x20   drop(g);\n\
         \x20   drop(g);\n\
         }\n",
    );
    assert!(rules_of(&f).contains(&RuleId::GuardLifetime), "{f:?}");
}

#[test]
fn guard_lifetime_quiet_when_dropped_before_wait() {
    let f = lint_source(
        "crates/core/src/fake.rs",
        "pub fn publish(pin: &Pin, wal: &Wal) {\n\
         \x20   let g = pin.x();\n\
         \x20   g.touch();\n\
         \x20   drop(g);\n\
         \x20   wal.force();\n\
         }\n",
    );
    assert!(f.is_empty(), "{f:?}");
}

#[test]
fn guard_lifetime_quiet_when_guard_moves_into_a_call() {
    // Passing the guard by value hands its release to the callee; the wait
    // afterwards runs unlatched.
    let f = lint_source(
        "crates/core/src/fake.rs",
        "pub fn handoff(pin: &Pin, wal: &Wal, q: &Queue) {\n\
         \x20   let g = pin.x();\n\
         \x20   q.push(g);\n\
         \x20   wal.force();\n\
         }\n",
    );
    assert!(f.is_empty(), "{f:?}");
}

#[test]
fn guard_lifetime_suppressed_is_consumed_not_stale() {
    let f = lint_source(
        "crates/core/src/fake.rs",
        "pub fn publish(pin: &Pin, wal: &Wal) {\n\
         \x20   let g = pin.x();\n\
         \x20   // pitree-lint: allow(guard-lifetime) fixture: wait is bounded and the latch is private\n\
         \x20   wal.force();\n\
         \x20   drop(g);\n\
         }\n",
    );
    assert!(f.is_empty(), "{f:?}");
}

// ---- log-before-dirty as dataflow (§4.3.1) --------------------------------

#[test]
fn flow_lbd_fires_on_branch_conditional_append() {
    // The token rule sees an append earlier in the token stream and stays
    // quiet; only path-sensitivity sees the unlogged else-path.
    let f = lint_source(
        "crates/core/src/fake.rs",
        "pub fn apply(wal: &Wal, pin: &Pin, logged: bool) {\n\
         \x20   if logged {\n\
         \x20       wal.append(rec);\n\
         \x20   }\n\
         \x20   pin.mark_dirty();\n\
         }\n",
    );
    assert!(rules_of(&f).contains(&RuleId::LogBeforeDirty), "{f:?}");
}

#[test]
fn flow_lbd_fires_through_a_call_chain() {
    // The dirty sits in a helper; the uncalled root never appends. The
    // old per-function scan cannot connect the two.
    let f = lint_source(
        "crates/core/src/fake.rs",
        "pub fn entry(this: &T, pin: &Pin) {\n\
         \x20   poke(pin);\n\
         }\n\
         fn poke(pin: &Pin) {\n\
         \x20   pin.mark_dirty();\n\
         }\n",
    );
    let hit = f.iter().find(|x| x.rule == RuleId::LogBeforeDirty);
    assert!(hit.is_some(), "{f:?}");
    assert!(hit.unwrap().msg.contains("entry"), "{f:?}");
}

#[test]
fn flow_lbd_quiet_when_append_dominates_every_path() {
    let f = lint_source(
        "crates/core/src/fake.rs",
        "pub fn apply(wal: &Wal, pin: &Pin, retry: bool) -> R<()> {\n\
         \x20   wal.append(rec)?;\n\
         \x20   if retry {\n\
         \x20       pin.mark_dirty();\n\
         \x20   } else {\n\
         \x20       pin.mark_dirty_at(0);\n\
         \x20   }\n\
         \x20   Ok(())\n\
         }\n",
    );
    assert!(f.is_empty(), "{f:?}");
}

#[test]
fn flow_lbd_quiet_when_a_caller_discharges_the_obligation() {
    // Interprocedural: the only caller appends first, so the helper's
    // dirty is logged on every real path.
    let f = lint_source(
        "crates/core/src/fake.rs",
        "pub fn entry(wal: &Wal, pin: &Pin) {\n\
         \x20   wal.append(rec);\n\
         \x20   poke(pin);\n\
         }\n\
         fn poke(pin: &Pin) {\n\
         \x20   pin.mark_dirty();\n\
         }\n",
    );
    assert!(f.is_empty(), "{f:?}");
}

#[test]
fn flow_lbd_suppressed_is_consumed_not_stale() {
    let f = lint_source(
        "crates/core/src/fake.rs",
        "pub fn mkfs(pin: &Pin) {\n\
         \x20   // pitree-lint: allow(log-before-dirty) fixture: formatting a fresh store, no WAL yet\n\
         \x20   pin.mark_dirty();\n\
         }\n",
    );
    assert!(f.is_empty(), "{f:?}");
}

// ---- interprocedural no-wait (§4.2.2) -------------------------------------

#[test]
fn flow_no_wait_fires_through_a_cross_file_call_chain() {
    // completion.rs itself is clean under the token rule; the blocking
    // probe hides two calls away in another core file.
    let report = scan(&[
        (
            "crates/core/src/completion.rs",
            "pub fn finish(this: &T, store: &Store) {\n\
             \x20   grow(this, store);\n\
             }\n",
        ),
        (
            "crates/core/src/split.rs",
            "pub fn grow(this: &T, store: &Store) {\n\
             \x20   reserve(this, store);\n\
             }\n\
             fn reserve(this: &T, store: &Store) {\n\
             \x20   let alloc = store.space.lock_alloc();\n\
             }\n",
        ),
    ]);
    let hit = report
        .findings
        .iter()
        .find(|x| x.rule == RuleId::NoWait)
        .unwrap_or_else(|| panic!("{:?}", report.findings));
    assert_eq!(hit.path, "crates/core/src/split.rs");
    assert!(hit.msg.contains("finish"), "{hit:?}");
    assert!(hit.msg.contains("reserve"), "{hit:?}");
}

#[test]
fn flow_no_wait_quiet_when_not_reachable_from_completion_paths() {
    // The same blocking probe is fine when only the ordinary insert path
    // (not an SMO completion entry) reaches it.
    let report = scan(&[
        (
            "crates/core/src/completion.rs",
            "pub fn finish(this: &T) {\n\
             \x20   this.step();\n\
             }\n",
        ),
        (
            "crates/core/src/tree.rs",
            "pub fn insert(this: &T, store: &Store) {\n\
             \x20   reserve(this, store);\n\
             }\n\
             fn reserve(this: &T, store: &Store) {\n\
             \x20   let alloc = store.space.lock_alloc();\n\
             }\n",
        ),
    ]);
    assert!(
        !rules_of(&report.findings).contains(&RuleId::NoWait),
        "{:?}",
        report.findings
    );
}

#[test]
fn flow_no_wait_suppressed_is_consumed_not_stale() {
    let report = scan(&[
        (
            "crates/core/src/completion.rs",
            "pub fn finish(this: &T, store: &Store) {\n\
             \x20   reserve(this, store);\n\
             }\n",
        ),
        (
            "crates/core/src/split.rs",
            "pub fn reserve(this: &T, store: &Store) {\n\
             \x20   // pitree-lint: allow(no-wait) fixture: allocation latch ranks last, cannot invert\n\
             \x20   let alloc = store.space.lock_alloc();\n\
             }\n",
        ),
    ]);
    assert!(report.clean(), "{:?}", report.findings);
    assert_eq!(report.allowed.get(&RuleId::NoWait), Some(&1));
}

// ---- artifact + fallback tier ---------------------------------------------

#[test]
fn dot_artifact_has_header_edges_and_sites() {
    let report = scan(&[(
        "crates/core/src/fake.rs",
        "pub fn forward(pin: &Pin, store: &Store) {\n\
         \x20   let g = pin.x();\n\
         \x20   let alloc = store.space.lock_alloc();\n\
         }\n",
    )]);
    let dot = &report.latch_dot;
    assert!(dot.starts_with("// pitree-flow latch-acquisition order graph (paper 4.1)"));
    assert!(dot.contains("digraph latch_order"));
    assert!(dot.contains("\"node\" -> \"alloc\""));
    assert!(dot.contains("crates/core/src/fake.rs:3"), "{dot}");
}

#[test]
fn raw_identifiers_do_not_blind_the_scan() {
    // `r#type` must lex as an identifier, not open a raw string that
    // swallows the violation after it (lexer hardening, end to end).
    let f = lint_source(
        "crates/core/src/fake.rs",
        "pub fn apply(pin: &Pin) {\n\
         \x20   let r#type = 1;\n\
         \x20   pin.mark_dirty();\n\
         }\n",
    );
    assert!(rules_of(&f).contains(&RuleId::LogBeforeDirty), "{f:?}");
}

#[test]
fn token_lbd_rearms_when_the_parser_gives_up() {
    // A file the structural parser cannot follow falls back to the token
    // tier, so the gate never weakens: an unbalanced-brace construct plus
    // an unlogged dirty must still fire via the linear scan.
    let src = "pub fn weird(pin: &Pin) { if x { pin.mark_dirty(); } }";
    // Sanity: this parses, so the flow rule owns it...
    assert!(
        rules_of(&lint_source("crates/core/src/fake.rs", src)).contains(&RuleId::LogBeforeDirty)
    );
    // ...and a parse-defeating body still reports through the fallback.
    let broken = "pub fn weird(pin: &Pin) { match x { }; pin.mark_dirty(); }";
    let f = lint_source("crates/core/src/fake.rs", broken);
    assert!(rules_of(&f).contains(&RuleId::LogBeforeDirty), "{f:?}");
}
