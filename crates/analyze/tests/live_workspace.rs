//! The harness gate: the linter's rules hold over the live workspace.
//!
//! This is the same check `scripts/verify.sh` runs via the `pitree-lint`
//! binary; having it as a test means plain `cargo test` also refuses
//! protocol violations (and stale suppressions) anywhere in the tree.

use std::path::Path;

#[test]
fn workspace_is_clean_with_no_stale_allows() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = analyze::scan_workspace(&root).expect("workspace scan");
    assert!(
        report.files > 50,
        "scan must actually cover the workspace, saw {} files",
        report.files
    );
    assert!(
        report.clean(),
        "protocol violations or suppression problems in the live workspace:\n{}\n{}",
        report
            .findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n"),
        report.summary_table()
    );
}

#[test]
fn workspace_latch_order_graph_is_acyclic_and_stratified() {
    // The deadlock-freedom theorem (paper 4.1): the live workspace's
    // latch-acquisition order graph must be a DAG, and the strata we
    // designed must actually appear as edges — page latches before the
    // allocation latch before the space-map lock. If the parser ever
    // silently stopped seeing acquisitions, the missing edges fail this
    // test rather than vacuously passing the cycle check.
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = analyze::scan_workspace(&root).expect("workspace scan");
    let dot = &report.latch_dot;
    assert!(dot.contains("// acyclic: true"), "{dot}");
    assert!(dot.contains("\"alloc\" -> \"spacemap\""), "{dot}");
    assert!(
        dot.matches(" -> ").count() >= 4,
        "the live graph should have several strata:\n{dot}"
    );
}

#[test]
fn workspace_suppressions_are_all_in_use() {
    // `clean()` already fails on stale allows; this asserts the flip side —
    // the allows that do exist are really suppressing something, so the
    // counts in the summary stay honest.
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = analyze::scan_workspace(&root).expect("workspace scan");
    let suppressed: usize = report.allowed.values().sum();
    assert!(
        suppressed > 0,
        "the workspace documents its deliberate exceptions via reasoned allows"
    );
}
