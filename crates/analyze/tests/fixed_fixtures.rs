//! Negative-path fixtures: for every rule, a broken source that fires and
//! the *remediated* source — the fix the diagnostic message prescribes,
//! never a `pitree-lint: allow` suppression — shown to be quiet.
//!
//! `fixtures.rs` proves each rule has teeth; this file proves the advice
//! in each rule's message is actually sufficient to silence it. If a rule
//! tightens until its own prescribed fix no longer passes, these tests
//! catch the contradiction. All sources live in raw strings so the
//! live-workspace scan (which lints this file too, with string literals
//! stripped) never sees them as real code.

use analyze::{lint_source, RuleId};

/// Assert `broken` fires `rule` at `path` and `fixed` does not. The fixed
/// source must not lean on the suppression grammar.
fn assert_fix_silences(rule: RuleId, path: &str, broken: &str, fixed: &str) {
    assert!(
        !fixed.contains("pitree-lint"),
        "fixed fixture for {rule} must apply the fix, not a suppression"
    );
    let fired = lint_source(path, broken);
    assert!(
        fired.iter().any(|f| f.rule == rule),
        "broken fixture for {rule} did not fire: {fired:?}"
    );
    let still = lint_source(path, fixed);
    assert!(
        !still.iter().any(|f| f.rule == rule),
        "the prescribed fix did not silence {rule}: {still:?}"
    );
}

/// R1 fix: climbing a saved path switches from blocking `.x()` to
/// `try_x()` with a give-up arm (paper 5.2.2b — abandon the climb and
/// retry from the top rather than block against the search order).
#[test]
fn latch_order_fix_is_conditional_climb() {
    let broken = r#"
fn complete_posting(&self, path: &SavedPath) {
    for e in path.iter().rev() {
        let pin = self.pool.fetch(e.pid).unwrap();
        let g = pin.x();
        self.use_guard(g);
    }
}
"#;
    let fixed = r#"
fn complete_posting(&self, path: &SavedPath) {
    for e in path.iter().rev() {
        let pin = self.pool.fetch(e.pid).unwrap();
        let Some(g) = pin.try_x() else { return };
        self.use_guard(g);
    }
}
"#;
    assert_fix_silences(RuleId::LatchOrder, "crates/core/src/fake.rs", broken, fixed);
}

/// R1 fix (promotion shape): drop the later-ordered guard before
/// promoting, instead of promoting while it is held (paper 4.1.1).
#[test]
fn latch_order_fix_is_drop_before_promote() {
    let broken = r#"
fn post_term(&self, parent: &Pin, child: &Pin) {
    let pg = parent.u();
    let cg = child.u();
    let xg = pg.promote();
    self.write(xg);
}
"#;
    let fixed = r#"
fn post_term(&self, parent: &Pin, child: &Pin) {
    let pg = parent.u();
    let cg = child.u();
    drop(cg);
    let xg = pg.promote();
    self.write(xg);
}
"#;
    assert_fix_silences(RuleId::LatchOrder, "crates/core/src/fake.rs", broken, fixed);
}

/// R2 fix: a completion path replaces blocking `lock()` with the
/// `try_lock()` probe the No-Wait Rule demands, handling refusal by
/// giving up (paper 4.2.2).
#[test]
fn no_wait_fix_is_try_variant() {
    let broken = r#"
fn complete(&self) -> StoreResult<()> {
    let guard = self.table.lock();
    guard.use_it();
    Ok(())
}
"#;
    let fixed = r#"
fn complete(&self) -> StoreResult<()> {
    let Ok(guard) = self.table.try_lock() else {
        return Ok(()); // refused: leave the SMO for a later completion
    };
    guard.use_it();
    Ok(())
}
"#;
    assert_fix_silences(
        RuleId::NoWait,
        "crates/core/src/completion.rs",
        broken,
        fixed,
    );
}

/// R3 fix: the WAL append moves ahead of `mark_dirty` in the same
/// function (paper 4.3.1 — the log record must exist before the change is
/// visible to write-back).
#[test]
fn log_before_dirty_fix_is_append_first() {
    let broken = r#"
fn apply(&self, page: &mut Guard) -> StoreResult<()> {
    page.mark_dirty();
    self.wal.append(&self.record)?;
    Ok(())
}
"#;
    let fixed = r#"
fn apply(&self, page: &mut Guard) -> StoreResult<()> {
    self.wal.append(&self.record)?;
    page.mark_dirty();
    Ok(())
}
"#;
    assert_fix_silences(
        RuleId::LogBeforeDirty,
        "crates/core/src/fake.rs",
        broken,
        fixed,
    );
}

/// R4 fix: recovery code swaps `.unwrap()` and direct indexing for typed
/// errors and `.get(...)` (paper 4.3.2 — a torn tail is an input, not a
/// bug).
#[test]
fn panic_free_recovery_fix_is_typed_errors() {
    let broken = r#"
fn read_header(&self, buf: &Bytes) -> Lsn {
    let first = buf[0];
    self.decode(first).unwrap()
}
"#;
    let fixed = r#"
fn read_header(&self, buf: &Bytes) -> Result<Lsn, WalError> {
    let first = buf.get(0).copied().ok_or(WalError::TornRecord)?;
    self.decode(first).ok_or(WalError::TornRecord)
}
"#;
    assert_fix_silences(
        RuleId::PanicFreeRecovery,
        "crates/wal/src/recovery.rs",
        broken,
        fixed,
    );
}

/// R5 fix: `std::sync::Mutex` becomes the poison-free wrapper and
/// `Instant` timing becomes a `Stopwatch`, exactly as the diagnostics
/// prescribe.
#[test]
fn sync_hygiene_fix_is_workspace_wrappers() {
    let broken = r#"
use std::sync::Mutex;
use std::time::Instant;

fn timed(&self) -> u64 {
    let started = Instant::now();
    let _g = self.inner.lock();
    started.elapsed().as_nanos() as u64
}
"#;
    let fixed = r#"
use pitree_pagestore::sync::Mutex;
use pitree_obs::Stopwatch;

fn timed(&self, clock: &Stopwatch) -> u64 {
    let started = clock.start();
    let _g = self.inner.lock();
    clock.elapsed_ns(started)
}
"#;
    assert_fix_silences(
        RuleId::SyncHygiene,
        "crates/core/src/fake.rs",
        broken,
        fixed,
    );
}

/// R6 fix: a sim-driven test stops reading the environment and wall clock
/// and derives everything from the seed corpus instead.
#[test]
fn determinism_fix_is_seed_derived() {
    let broken = r#"
fn pick_seed(i: usize) -> u64 {
    match std::env::var("EXTRA_SEED") {
        Ok(s) => s.parse().unwrap(),
        Err(_) => pitree_sim::prop::case_seed("sweep", i),
    }
}
"#;
    let fixed = r#"
fn pick_seed(i: usize) -> u64 {
    pitree_sim::prop::case_seed("sweep", i)
}
"#;
    assert_fix_silences(
        RuleId::Determinism,
        "crates/sim/tests/fake.rs",
        broken,
        fixed,
    );
}
