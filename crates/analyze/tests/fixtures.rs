//! Per-rule fixtures: every rule has at least one firing and one quiet
//! case, plus the suppression grammar's own contract (reason mandatory,
//! stale allows reported, `allow-file` scope). All sources live in raw
//! strings so the live-workspace scan (which lints this file too, with
//! string literals stripped) never sees them as real code.

use analyze::{lint_source, RuleId};

fn rules_of(path: &str, src: &str) -> Vec<RuleId> {
    lint_source(path, src).into_iter().map(|f| f.rule).collect()
}

// ---- R1: latch-order ------------------------------------------------------

#[test]
fn latch_order_fires_on_blocking_climb() {
    let src = r#"
fn complete_posting(&self, path: &SavedPath) {
    for e in path.iter().rev() {
        let pin = self.pool.fetch(e.pid).unwrap();
        let g = pin.x();
        self.use_guard(g);
    }
}
"#;
    let found = lint_source("crates/core/src/fake.rs", src);
    assert!(
        found.iter().any(|f| f.rule == RuleId::LatchOrder),
        "blocking .x() while iterating a saved path in reverse must fire: {found:?}"
    );
}

#[test]
fn latch_order_quiet_on_conditional_climb() {
    let src = r#"
fn complete_posting(&self, path: &SavedPath) {
    for e in path.iter().rev() {
        let pin = self.pool.fetch(e.pid).unwrap();
        let Some(g) = pin.try_x() else { return };
        self.use_guard(g);
    }
}
"#;
    assert!(
        !rules_of("crates/core/src/fake.rs", src).contains(&RuleId::LatchOrder),
        "try_x while climbing is exactly what 5.2.2b prescribes"
    );
}

#[test]
fn latch_order_fires_on_promote_while_latched() {
    let src = r#"
fn post_term(&self, parent: &Pin, child: &Pin) {
    let pg = parent.u();
    let cg = child.u();
    let xg = pg.promote();
    self.write(xg);
}
"#;
    let found = lint_source("crates/core/src/fake.rs", src);
    assert!(
        found.iter().any(|f| f.rule == RuleId::LatchOrder),
        "promoting while a later-ordered U latch is held must fire: {found:?}"
    );
}

#[test]
fn latch_order_quiet_when_promoting_the_only_guard() {
    let src = r#"
fn post_term(&self, parent: &Pin) {
    let pg = parent.u();
    let xg = pg.promote();
    self.write(xg);
}
"#;
    assert!(!rules_of("crates/core/src/fake.rs", src).contains(&RuleId::LatchOrder));
}

#[test]
fn latch_order_quiet_when_earlier_guard_dropped() {
    // The drop/refetch hop pattern from run_post: each re-latch is preceded
    // by dropping the previous guard, so only one latch is live at promote.
    let src = r#"
fn walk_and_promote(&self, a: &Pin, b: &Pin) {
    let mut g = a.u();
    drop(g);
    g = b.u();
    let xg = g.promote();
    self.write(xg);
}
"#;
    assert!(!rules_of("crates/core/src/fake.rs", src).contains(&RuleId::LatchOrder));
}

#[test]
fn latch_order_ignores_scope_closed_guards() {
    let src = r#"
fn scoped(&self, a: &Pin, b: &Pin) {
    {
        let g = a.u();
        self.read(&g);
    }
    let h = b.u();
    let xg = h.promote();
    self.write(xg);
}
"#;
    assert!(!rules_of("crates/core/src/fake.rs", src).contains(&RuleId::LatchOrder));
}

// ---- R2: no-wait ----------------------------------------------------------

#[test]
fn no_wait_fires_on_blocking_lock_in_completion_path() {
    let src = r#"
fn complete(&self) {
    let guard = self.table.lock();
    guard.use_it();
}
"#;
    for path in [
        "crates/core/src/completion.rs",
        "crates/core/src/post.rs",
        "crates/core/src/consolidate.rs",
    ] {
        assert!(
            rules_of(path, src).contains(&RuleId::NoWait),
            "blocking lock() must fire in {path}"
        );
    }
}

#[test]
fn no_wait_quiet_on_try_variants_and_out_of_scope() {
    let src = r#"
fn complete(&self) {
    let Some(guard) = self.table.try_lock() else { return };
    guard.use_it();
}
"#;
    assert!(!rules_of("crates/core/src/post.rs", src).contains(&RuleId::NoWait));
    // The same blocking call outside the completion paths is not R2's business.
    let blocking = "fn f(&self) { let g = self.table.lock(); g.use_it(); }";
    assert!(!rules_of("crates/core/src/tree.rs", blocking).contains(&RuleId::NoWait));
}

// ---- R3: log-before-dirty -------------------------------------------------

#[test]
fn log_before_dirty_fires_without_append() {
    let src = r#"
fn poke(&self, page: &Pin) {
    let mut g = page.x();
    g.set_lsn(Lsn(1));
    page.mark_dirty();
}
"#;
    assert!(rules_of("crates/core/src/fake.rs", src).contains(&RuleId::LogBeforeDirty));
}

#[test]
fn log_before_dirty_quiet_when_logged_first() {
    let src = r#"
fn poke(&self, page: &Pin) {
    let mut g = page.x();
    let lsn = self.log.append(self.id, self.last, rec);
    g.set_lsn(lsn);
    page.mark_dirty();
}
"#;
    assert!(!rules_of("crates/core/src/fake.rs", src).contains(&RuleId::LogBeforeDirty));
}

// ---- R4: panic-free-recovery ---------------------------------------------

#[test]
fn panic_free_fires_on_unwrap_macro_and_indexing() {
    let src = r#"
fn redo(&self, m: &Map, v: &[u8]) -> u8 {
    let rec = self.read(self.cursor).unwrap();
    if rec.bad() {
        panic!("torn tail");
    }
    let first = v[0];
    m.apply(rec, first)
}
"#;
    let rules = rules_of("crates/wal/src/recovery.rs", src);
    let hits = rules
        .iter()
        .filter(|r| **r == RuleId::PanicFreeRecovery)
        .count();
    assert!(
        hits >= 3,
        "unwrap + panic! + v[0] should all fire: {rules:?}"
    );
    // Same shapes fire in any */undo.rs.
    assert!(rules_of("crates/hbtree/src/undo.rs", src).contains(&RuleId::PanicFreeRecovery));
}

#[test]
fn panic_free_quiet_on_typed_errors_and_tests() {
    let src = r#"
fn redo(&self, v: &[u8]) -> StoreResult<u8> {
    let rec = self.read(self.cursor)?;
    let first = v.first().copied().ok_or_else(|| StoreError::Corrupt("empty".to_string()))?;
    Ok(first)
}

#[cfg(test)]
mod tests {
    #[test]
    fn torn_tail() {
        let v = vec![1u8];
        assert_eq!(v.first().copied().unwrap(), v[0]);
    }
}
"#;
    assert!(
        !rules_of("crates/wal/src/recovery.rs", src).contains(&RuleId::PanicFreeRecovery),
        "typed-error production code and unwrap-happy tests are both fine"
    );
}

#[test]
fn panic_free_out_of_scope_elsewhere() {
    let src = "fn f(o: Option<u8>) -> u8 { o.unwrap() }";
    assert!(!rules_of("crates/core/src/tree.rs", src).contains(&RuleId::PanicFreeRecovery));
}

#[test]
fn panic_free_covers_log_manager() {
    // The group-commit log manager parses volatile tail frames in
    // `force_to`; a torn frame is an input, so unwrap-class aborts are
    // protocol violations there just as in recovery.rs.
    let fires = r#"
fn force_to(&self, lsn: Lsn) -> StoreResult<()> {
    let len = u32::from_le_bytes(buf[off..off + 4].try_into().unwrap());
    self.force_until(len as u64, Some(lsn))
}
"#;
    assert!(
        rules_of("crates/wal/src/log.rs", fires).contains(&RuleId::PanicFreeRecovery),
        "unwrap on a torn tail frame must fire in log.rs"
    );

    let quiet = r#"
fn force_to(&self, lsn: Lsn) -> StoreResult<()> {
    let Some(len) = le_u32_at(&tail.buf, off) else {
        return Err(StoreError::Corrupt(format!("torn volatile tail at {lsn}")));
    };
    self.force_until(len as u64, Some(lsn))
}
"#;
    assert!(
        !rules_of("crates/wal/src/log.rs", quiet).contains(&RuleId::PanicFreeRecovery),
        "checked parsing with typed errors is the sanctioned shape"
    );
}

#[test]
fn panic_free_covers_instant_restart() {
    // On-demand redo runs inside every post-crash fetch: a panic there
    // takes down the *serving* store, not a recovery tool, so the
    // instant-restart module is held to the same standard.
    let fires = r#"
fn redo_page(&self, page: &PinnedPage<'_>) -> StoreResult<()> {
    let shard = &self.plan[page_shard(page.id(), self.plan.len())];
    let records = shard.lock().remove(&page.id()).unwrap();
    self.replay(page, records)
}
"#;
    assert!(
        rules_of("crates/wal/src/instant.rs", fires).contains(&RuleId::PanicFreeRecovery),
        "indexing + unwrap in the redo plan must fire in instant.rs"
    );

    let quiet = r#"
fn redo_page(&self, page: &PinnedPage<'_>) -> StoreResult<()> {
    let slot = self.shard_slot(page.id())?;
    let records = match slot.lock().remove(&page.id()) {
        Some(r) => r,
        None => return Ok(()),
    };
    self.replay(page, records)
}
"#;
    assert!(
        !rules_of("crates/wal/src/instant.rs", quiet).contains(&RuleId::PanicFreeRecovery),
        "checked shard lookup with typed errors is the sanctioned shape"
    );
}

// ---- R5: sync-hygiene -----------------------------------------------------

#[test]
fn sync_hygiene_fires_on_std_sync_and_instant() {
    let path_form = "use std::sync::Mutex;\nfn f() {}";
    assert!(rules_of("crates/core/src/fake.rs", path_form).contains(&RuleId::SyncHygiene));

    let group_form = "use std::sync::{Arc, Mutex};\nfn f() {}";
    let found = lint_source("crates/core/src/fake.rs", group_form);
    assert_eq!(
        found
            .iter()
            .filter(|f| f.rule == RuleId::SyncHygiene)
            .count(),
        1,
        "Mutex fires, Arc in the same group does not: {found:?}"
    );

    let instant = "use std::time::Instant;\nfn f() -> Instant { Instant::now() }";
    assert!(rules_of("crates/core/src/fake.rs", instant).contains(&RuleId::SyncHygiene));
}

#[test]
fn sync_hygiene_quiet_on_wrappers_and_sanctioned_files() {
    let wrapper = "use pitree_pagestore::sync::{Condvar, Mutex};\nfn f() {}";
    assert!(!rules_of("crates/core/src/fake.rs", wrapper).contains(&RuleId::SyncHygiene));

    let arc_only = "use std::sync::Arc;\nfn f() {}";
    assert!(!rules_of("crates/core/src/fake.rs", arc_only).contains(&RuleId::SyncHygiene));

    // The wrapper module and the observability crate define the primitives.
    let raw = "use std::sync::Mutex;\nuse std::time::Instant;\nfn f() {}";
    assert!(!rules_of("crates/pagestore/src/sync.rs", raw).contains(&RuleId::SyncHygiene));
    assert!(!rules_of("crates/obs/src/lib.rs", raw).contains(&RuleId::SyncHygiene));
}

// ---- R6: determinism ------------------------------------------------------

#[test]
fn determinism_fires_in_sim_code() {
    let src = r#"
fn seed(&self) -> u64 {
    let t = SystemTime::now();
    let salt = std::env::var("SALT").unwrap_or_default();
    mix(t, salt)
}
"#;
    let rules = rules_of("crates/sim/src/fake.rs", src);
    assert!(
        rules.iter().filter(|r| **r == RuleId::Determinism).count() >= 2,
        "SystemTime and env::var must both fire in crates/sim: {rules:?}"
    );
}

#[test]
fn determinism_applies_to_sim_driven_tests_including_test_code() {
    let src = r#"
use pitree_sim::SimRng;

#[test]
fn shaky() {
    let mut h = DefaultHasher::new();
    let mut rng = SimRng::new(42);
    drive(&mut h, &mut rng);
}
"#;
    assert!(
        rules_of("crates/core/tests/fake_sim.rs", src).contains(&RuleId::Determinism),
        "sim-driven tests are in scope even inside #[test] fns"
    );
}

#[test]
fn determinism_quiet_outside_sim() {
    // DefaultHasher is only R6's concern, and this file is neither in
    // crates/sim nor a sim-driven test.
    let src = "fn f() { let h = DefaultHasher::new(); use_it(h); }";
    assert!(lint_source("crates/core/src/fake.rs", src).is_empty());
}

// ---- Suppressions ---------------------------------------------------------

#[test]
fn allow_with_reason_suppresses_next_line() {
    let src = r#"
fn poke(&self, page: &Pin) {
    // pitree-lint: allow(log-before-dirty) formatting a fresh store with no WAL yet
    page.mark_dirty();
}
"#;
    assert!(
        lint_source("crates/core/src/fake.rs", src).is_empty(),
        "a reasoned allow on the preceding line must suppress the finding"
    );
}

#[test]
fn allow_with_reason_suppresses_same_line() {
    let src = r#"
fn poke(&self, page: &Pin) {
    page.mark_dirty(); // pitree-lint: allow(log-before-dirty) fresh store, no WAL yet
}
"#;
    assert!(lint_source("crates/core/src/fake.rs", src).is_empty());
}

#[test]
fn allow_without_reason_is_rejected() {
    let src = r#"
fn poke(&self, page: &Pin) {
    // pitree-lint: allow(log-before-dirty)
    page.mark_dirty();
}
"#;
    let found = lint_source("crates/core/src/fake.rs", src);
    assert!(
        found.iter().any(|f| f.rule == RuleId::LintAllow),
        "reasonless allow must be a finding itself: {found:?}"
    );
    assert!(
        found.iter().any(|f| f.rule == RuleId::LogBeforeDirty),
        "and it must NOT suppress the violation: {found:?}"
    );
}

#[test]
fn unknown_rule_in_allow_is_rejected() {
    let src = "// pitree-lint: allow(made-up-rule) because reasons\nfn f() {}";
    let found = lint_source("crates/core/src/fake.rs", src);
    assert!(found.iter().any(|f| f.rule == RuleId::LintAllow));
}

#[test]
fn stale_allow_is_reported() {
    let src = r#"
fn poke(&self) {
    // pitree-lint: allow(log-before-dirty) the violation this excused is long gone
    self.nothing_dirty_here();
}
"#;
    let found = lint_source("crates/core/src/fake.rs", src);
    assert_eq!(found.len(), 1, "{found:?}");
    assert_eq!(found[0].rule, RuleId::StaleAllow);
    assert_eq!(found[0].line, 3);
}

#[test]
fn allow_does_not_cover_other_rules_or_far_lines() {
    let src = r#"
fn poke(&self, page: &Pin) {
    // pitree-lint: allow(no-wait) wrong rule for what actually fires here
    page.mark_dirty();
}
"#;
    let found = lint_source("crates/core/src/fake.rs", src);
    assert!(
        found.iter().any(|f| f.rule == RuleId::LogBeforeDirty),
        "an allow for a different rule must not suppress: {found:?}"
    );
    assert!(
        found.iter().any(|f| f.rule == RuleId::StaleAllow),
        "and the mismatched allow is stale: {found:?}"
    );

    let far = r#"
fn poke(&self, page: &Pin) {
    // pitree-lint: allow(log-before-dirty) too far away to bind

    page.mark_dirty();
}
"#;
    let found = lint_source("crates/core/src/fake.rs", far);
    assert!(
        found.iter().any(|f| f.rule == RuleId::LogBeforeDirty),
        "a line allow only covers its own and the next line: {found:?}"
    );
}

#[test]
fn allow_file_covers_every_instance_of_its_rule() {
    let src = r#"
// pitree-lint: allow-file(log-before-dirty) this module is deliberately non-recoverable
fn a(&self, p: &Pin) { p.mark_dirty(); }
fn b(&self, p: &Pin) { p.mark_dirty(); }
"#;
    assert!(lint_source("crates/core/src/fake.rs", src).is_empty());
}

#[test]
fn malformed_directive_is_rejected() {
    let src = "// pitree-lint: allcw(no-wait) typo in the verb\nfn f() {}";
    let found = lint_source("crates/core/src/fake.rs", src);
    assert!(found.iter().any(|f| f.rule == RuleId::LintAllow));

    let unterminated = "// pitree-lint: allow(no-wait never closed\nfn f() {}";
    let found = lint_source("crates/core/src/fake.rs", unterminated);
    assert!(found.iter().any(|f| f.rule == RuleId::LintAllow));
}

// ---- Output format --------------------------------------------------------

#[test]
fn findings_render_as_path_line_rule_message() {
    let src = "fn f(&self, p: &Pin) { p.mark_dirty(); }";
    let found = lint_source("crates/core/src/fake.rs", src);
    assert_eq!(found.len(), 1);
    let line = found[0].to_string();
    assert!(
        line.starts_with("crates/core/src/fake.rs:1: log-before-dirty: "),
        "finding must render grep-ably: {line}"
    );
}
