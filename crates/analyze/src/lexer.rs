//! A deliberately small Rust lexer: enough token structure for protocol
//! linting, nothing more. Comments and string/char literal *contents* are
//! stripped (so `"lock("` in a message never trips a rule), but comments are
//! captured separately because `// pitree-lint:` suppressions live there.
//!
//! The output is a flat token stream with line numbers; no AST, no `syn`.
//! Rules reconstruct just the structure they need (brace depth, `fn`
//! boundaries, `#[cfg(test)]` regions) from this stream.

/// What kind of token this is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident,
    /// Single punctuation character (`.`, `(`, `#`, ...).
    Punct,
    /// Numeric literal (text preserved) or string/char literal (text
    /// collapsed to `""` / `''`).
    Lit,
    /// Lifetime (`'a`), text without the quote.
    Lifetime,
}

/// One lexed token.
#[derive(Debug, Clone)]
pub struct Token {
    /// 1-based source line.
    pub line: u32,
    /// Kind; see [`TokKind`].
    pub kind: TokKind,
    /// Token text (empty contents for string literals).
    pub text: String,
}

impl Token {
    /// Whether this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// Whether this token is the punctuation `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == 1 && self.text.starts_with(c)
    }
}

/// A comment, captured for `pitree-lint:` directive parsing.
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: u32,
    /// Text after the comment opener (`//` or `/*`), trimmed of doc markers.
    pub text: String,
}

/// Lex `src` into tokens plus captured comments.
pub fn lex(src: &str) -> (Vec<Token>, Vec<Comment>) {
    let b: Vec<char> = src.chars().collect();
    let mut toks = Vec::new();
    let mut comments = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    let n = b.len();

    let ident_start = |c: char| c.is_alphabetic() || c == '_';
    let ident_cont = |c: char| c.is_alphanumeric() || c == '_';

    while i < n {
        let c = b[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Line comment (also doc comments; strip leading `/`/`!`).
        if c == '/' && i + 1 < n && b[i + 1] == '/' {
            let start = i + 2;
            let mut j = start;
            while j < n && b[j] != '\n' {
                j += 1;
            }
            let text: String = b[start..j].iter().collect();
            let text = text.trim_start_matches(['/', '!']).trim().to_string();
            comments.push(Comment { line, text });
            i = j;
            continue;
        }
        // Block comment, nested.
        if c == '/' && i + 1 < n && b[i + 1] == '*' {
            let cline = line;
            let start = i + 2;
            let mut depth = 1;
            let mut j = start;
            while j < n && depth > 0 {
                if b[j] == '\n' {
                    line += 1;
                    j += 1;
                } else if b[j] == '/' && j + 1 < n && b[j + 1] == '*' {
                    depth += 1;
                    j += 2;
                } else if b[j] == '*' && j + 1 < n && b[j + 1] == '/' {
                    depth -= 1;
                    j += 2;
                } else {
                    j += 1;
                }
            }
            let end = j.saturating_sub(2).max(start);
            let text: String = b[start..end].iter().collect();
            comments.push(Comment {
                line: cline,
                text: text.trim_start_matches(['*', '!']).trim().to_string(),
            });
            i = j;
            continue;
        }
        // Raw / byte string prefixes: r"", r#""#, b"", br#""#, b''.
        if (c == 'r' || c == 'b') && i + 1 < n {
            let (plen, is_raw) = raw_prefix(&b, i);
            if plen > 0 {
                if is_raw {
                    i = skip_raw_string(&b, i + plen, &mut line);
                } else if b[i + plen - 1] == '"' {
                    i = skip_string(&b, i + plen, &mut line);
                } else {
                    i = skip_char(&b, i + plen, &mut line);
                }
                toks.push(Token {
                    line,
                    kind: TokKind::Lit,
                    text: String::new(),
                });
                continue;
            }
        }
        if ident_start(c) {
            let mut j = i + 1;
            while j < n && ident_cont(b[j]) {
                j += 1;
            }
            toks.push(Token {
                line,
                kind: TokKind::Ident,
                text: b[i..j].iter().collect(),
            });
            i = j;
            continue;
        }
        if c.is_ascii_digit() {
            let mut j = i + 1;
            while j < n
                && (ident_cont(b[j])
                    || (b[j] == '.' && j + 1 < n && b[j + 1].is_ascii_digit() && b[j - 1] != '.'))
            {
                j += 1;
            }
            toks.push(Token {
                line,
                kind: TokKind::Lit,
                text: b[i..j].iter().collect(),
            });
            i = j;
            continue;
        }
        if c == '"' {
            i = skip_string(&b, i + 1, &mut line);
            toks.push(Token {
                line,
                kind: TokKind::Lit,
                text: String::new(),
            });
            continue;
        }
        if c == '\'' {
            // Lifetime or char literal.
            if i + 1 < n && (ident_start(b[i + 1])) {
                // `'a'` is a char literal; `'a` / `'static` a lifetime.
                let mut j = i + 2;
                while j < n && ident_cont(b[j]) {
                    j += 1;
                }
                if j < n && b[j] == '\'' && j == i + 2 {
                    // Single-char literal like 'a'.
                    toks.push(Token {
                        line,
                        kind: TokKind::Lit,
                        text: String::new(),
                    });
                    i = j + 1;
                } else {
                    toks.push(Token {
                        line,
                        kind: TokKind::Lifetime,
                        text: b[i + 1..j].iter().collect(),
                    });
                    i = j;
                }
            } else {
                i = skip_char(&b, i + 1, &mut line);
                toks.push(Token {
                    line,
                    kind: TokKind::Lit,
                    text: String::new(),
                });
            }
            continue;
        }
        toks.push(Token {
            line,
            kind: TokKind::Punct,
            text: c.to_string(),
        });
        i += 1;
    }
    (toks, comments)
}

/// Recognize `r"`, `r#`, `b"`, `b'`, `br"`, `br#`, `rb` prefixes starting at
/// `i`. Returns (prefix length including the opening quote for non-raw
/// forms, is_raw). A zero length means "not a literal prefix".
fn raw_prefix(b: &[char], i: usize) -> (usize, bool) {
    let n = b.len();
    let c0 = b[i];
    let c1 = if i + 1 < n { b[i + 1] } else { '\0' };
    // `r#` only opens a raw string when hashes are followed by a quote;
    // otherwise it is a raw identifier (`r#type`) and must lex as ident.
    let hashes_then_quote = |mut j: usize| {
        while j < n && b[j] == '#' {
            j += 1;
        }
        j < n && b[j] == '"'
    };
    match (c0, c1) {
        ('r', '"') => (1, true),
        ('r', '#') if hashes_then_quote(i + 1) => (1, true),
        ('b', '"') => (2, false),
        ('b', '\'') => (2, false),
        ('b', 'r') if i + 2 < n && (b[i + 2] == '"' || hashes_then_quote(i + 2)) => (2, true),
        _ => (0, false),
    }
}

/// Skip a raw string starting at the `#`* `"` opener; returns index past the
/// closing quote+hashes.
fn skip_raw_string(b: &[char], mut i: usize, line: &mut u32) -> usize {
    let n = b.len();
    let mut hashes = 0;
    while i < n && b[i] == '#' {
        hashes += 1;
        i += 1;
    }
    if i < n && b[i] == '"' {
        i += 1;
    }
    while i < n {
        if b[i] == '\n' {
            *line += 1;
            i += 1;
        } else if b[i] == '"' {
            let mut j = i + 1;
            let mut h = 0;
            while j < n && b[j] == '#' && h < hashes {
                h += 1;
                j += 1;
            }
            if h == hashes {
                return j;
            }
            i += 1;
        } else {
            i += 1;
        }
    }
    i
}

/// Skip a normal string body (opening quote already consumed).
fn skip_string(b: &[char], mut i: usize, line: &mut u32) -> usize {
    let n = b.len();
    while i < n {
        match b[i] {
            '\\' => i += 2,
            '\n' => {
                *line += 1;
                i += 1;
            }
            '"' => return i + 1,
            _ => i += 1,
        }
    }
    i
}

/// Skip a char-literal body (opening quote already consumed).
fn skip_char(b: &[char], mut i: usize, line: &mut u32) -> usize {
    let n = b.len();
    while i < n {
        match b[i] {
            '\\' => i += 2,
            '\n' => {
                *line += 1;
                i += 1;
            }
            '\'' => return i + 1,
            _ => i += 1,
        }
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .0
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn strings_are_stripped() {
        assert_eq!(idents(r#"let x = "lock(unwrap)";"#), vec!["let", "x"]);
    }

    #[test]
    fn raw_and_byte_strings_are_stripped() {
        assert_eq!(idents(r##"let x = r#"panic!"#;"##), vec!["let", "x"]);
        assert_eq!(idents(r#"let x = b"unwrap";"#), vec!["let", "x"]);
    }

    #[test]
    fn comments_are_captured_not_tokenized() {
        let (toks, comments) = lex("a // pitree-lint: allow(no-wait) queue\nb");
        assert_eq!(toks.len(), 2);
        assert_eq!(comments.len(), 1);
        assert_eq!(comments[0].line, 1);
        assert!(comments[0].text.starts_with("pitree-lint:"));
        assert_eq!(toks[1].line, 2);
    }

    #[test]
    fn nested_block_comments() {
        let (toks, comments) = lex("/* a /* b */ c */ x");
        assert_eq!(toks.len(), 1);
        assert!(toks[0].is_ident("x"));
        assert_eq!(comments.len(), 1);
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let (toks, _) = lex("fn f<'a>(x: &'a str) { let c = 'x'; }");
        assert!(toks
            .iter()
            .any(|t| t.kind == TokKind::Lifetime && t.text == "a"));
        // 'x' must not desync the lexer: the trailing brace is still seen.
        assert!(toks.iter().any(|t| t.is_punct('}')));
    }

    #[test]
    fn line_numbers_track_multiline_strings() {
        let (toks, _) = lex("let s = \"a\nb\";\nfinal_ident");
        let f = toks.iter().find(|t| t.is_ident("final_ident")).unwrap();
        assert_eq!(f.line, 3);
    }

    #[test]
    fn doc_comment_markers_trimmed() {
        let (_, comments) = lex("/// pitree-lint: allow(latch-order) why\nfn f() {}");
        assert_eq!(comments[0].text, "pitree-lint: allow(latch-order) why");
    }

    #[test]
    fn raw_identifiers_do_not_open_raw_strings() {
        // A raw identifier (`r#type`) must not be read as an unterminated
        // raw string that swallows the rest of the file.
        let (toks, _) = lex("let r#type = 1; let r#fn = 2; visible.mark_dirty();");
        assert!(toks.iter().any(|t| t.is_ident("visible")));
        assert!(toks.iter().any(|t| t.is_ident("mark_dirty")));
        // `r#` splits into the ident `r` plus `#` punct plus the keyword.
        assert!(toks.iter().any(|t| t.is_ident("r")));
    }

    #[test]
    fn multi_hash_raw_strings_terminate_correctly() {
        // The inner `"#` must not close an `r##"..."##` string early.
        let (toks, _) = lex(r####"let x = r##"a "# b"##; after"####);
        assert!(toks.iter().any(|t| t.is_ident("after")));
        assert!(!toks.iter().any(|t| t.is_ident("b")));
    }

    #[test]
    fn deeply_nested_block_comments() {
        let (toks, comments) = lex("/* 1 /* 2 /* 3 */ 2 */ 1 */ survivor");
        assert_eq!(toks.len(), 1);
        assert!(toks[0].is_ident("survivor"));
        assert_eq!(comments.len(), 1);
    }

    #[test]
    fn brace_char_literals_do_not_skew_depth() {
        // '{' and '}' as char literals must not unbalance brace tracking.
        let (toks, _) = lex("fn f() { let a = '{'; let b = '}'; } fn g() {}");
        let opens = toks.iter().filter(|t| t.is_punct('{')).count();
        let closes = toks.iter().filter(|t| t.is_punct('}')).count();
        assert_eq!(opens, 2);
        assert_eq!(closes, 2);
        assert!(toks.iter().any(|t| t.is_ident("g")));
    }

    #[test]
    fn lifetime_before_ident_is_not_a_char() {
        let (toks, _) = lex("fn f<'long>(x: &'long str) -> &'long str { x }");
        assert_eq!(
            toks.iter()
                .filter(|t| t.kind == TokKind::Lifetime && t.text == "long")
                .count(),
            3
        );
    }
}
