//! Control-flow graph lowering for [`crate::parse::Node`] trees.
//!
//! Each function body lowers to a small block graph: `Branch` alternatives
//! fork and re-join, `Loop` bodies get a back edge plus a zero-iteration
//! bypass, `?` forks to both the exit and a continuation, and `return`
//! edges straight to the exit. Scope exits append synthetic implicit
//! [`Event::DropVar`] releases so guard state stays accurate on the
//! fall-through path (early exits conservatively keep guards "held",
//! which is the safe direction for every rule here).

use crate::parse::{Event, Node};

/// One basic block: straight-line events plus successor edges.
#[derive(Debug, Default, Clone)]
pub struct Block {
    /// Events in program order.
    pub events: Vec<Event>,
    /// Successor block indices.
    pub succs: Vec<usize>,
}

/// A function CFG. Block 0 is the entry, block 1 the exit.
#[derive(Debug, Clone)]
pub struct Cfg {
    /// All blocks.
    pub blocks: Vec<Block>,
    /// Entry block index (always 0).
    pub entry: usize,
    /// Exit block index (always 1).
    pub exit: usize,
}

/// Lower a function body to a CFG.
pub fn lower(body: &Node) -> Cfg {
    let mut b = Builder {
        blocks: vec![Block::default(), Block::default()],
        loops: Vec::new(),
    };
    if let Some(last) = b.go(body, Some(0)) {
        b.edge(last, 1);
    }
    Cfg {
        blocks: b.blocks,
        entry: 0,
        exit: 1,
    }
}

struct Builder {
    blocks: Vec<Block>,
    /// (head, join) of enclosing loops, innermost last.
    loops: Vec<(usize, usize)>,
}

impl Builder {
    fn new_block(&mut self) -> usize {
        self.blocks.push(Block::default());
        self.blocks.len() - 1
    }

    fn edge(&mut self, from: usize, to: usize) {
        if !self.blocks[from].succs.contains(&to) {
            self.blocks[from].succs.push(to);
        }
    }

    /// Lower `node` with current block `cur`; returns the block control
    /// falls through to, or `None` if all paths diverge.
    fn go(&mut self, node: &Node, cur: Option<usize>) -> Option<usize> {
        let cur = cur?;
        match node {
            Node::Seq(items) => {
                let mut c = Some(cur);
                for it in items {
                    c = self.go(it, c);
                    if c.is_none() {
                        // Dead code after a diverging statement: skip.
                        break;
                    }
                }
                c
            }
            Node::Event(e) => {
                self.blocks[cur].events.push(e.clone());
                Some(cur)
            }
            Node::Branch(alts) => {
                let join = self.new_block();
                let mut any = false;
                for alt in alts {
                    let start = self.new_block();
                    self.edge(cur, start);
                    if let Some(end) = self.go(alt, Some(start)) {
                        self.edge(end, join);
                        any = true;
                    }
                }
                any.then_some(join)
            }
            Node::Loop(body) => {
                let head = self.new_block();
                let join = self.new_block();
                self.edge(cur, head);
                self.edge(head, join); // zero iterations
                let bstart = self.new_block();
                self.edge(head, bstart);
                self.loops.push((head, join));
                let bend = self.go(body, Some(bstart));
                self.loops.pop();
                if let Some(e) = bend {
                    self.edge(e, head); // back edge
                }
                Some(join)
            }
            Node::Scope(inner, binds) => {
                let end = self.go(inner, Some(cur))?;
                for v in binds {
                    self.blocks[end].events.push(Event::DropVar {
                        var: v.clone(),
                        line: 0,
                        implicit: true,
                    });
                }
                Some(end)
            }
            Node::Return => {
                self.edge(cur, 1);
                None
            }
            Node::TryExit => {
                // Error path exits; ok path continues in a fresh block so
                // the exit edge is observable to path-sensitive rules.
                self.edge(cur, 1);
                let cont = self.new_block();
                self.edge(cur, cont);
                Some(cont)
            }
            Node::Break => {
                let target = self.loops.last().map_or(1, |&(_, j)| j);
                self.edge(cur, target);
                None
            }
            Node::Continue => {
                let target = self.loops.last().map_or(1, |&(h, _)| h);
                self.edge(cur, target);
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::FileCx;
    use crate::parse::parse_file;

    fn cfg_of(src: &str) -> Cfg {
        let ast = parse_file(&FileCx::new("crates/core/src/fake.rs", src));
        lower(&ast.fns[0].body)
    }

    /// Blocks reachable from entry.
    fn reachable(c: &Cfg) -> Vec<usize> {
        let mut seen = vec![false; c.blocks.len()];
        let mut stack = vec![c.entry];
        while let Some(b) = stack.pop() {
            if seen[b] {
                continue;
            }
            seen[b] = true;
            stack.extend(c.blocks[b].succs.iter().copied());
        }
        (0..c.blocks.len()).filter(|&i| seen[i]).collect()
    }

    #[test]
    fn straight_line_reaches_exit() {
        let c = cfg_of("fn f(&self) { self.wal.append(r); self.page.mark_dirty(); }");
        assert!(reachable(&c).contains(&c.exit));
    }

    #[test]
    fn branch_has_both_paths() {
        let c = cfg_of("fn f(&self, b: bool) { if b { x.append(r); } else { y.other(); } }");
        // entry forks to two alternative starts.
        let entry_succs = &c.blocks[c.entry].succs;
        assert_eq!(entry_succs.len(), 2);
    }

    #[test]
    fn return_diverges() {
        let c = cfg_of("fn f(&self) { return; }");
        assert!(c.blocks[c.entry].succs.contains(&c.exit));
    }

    #[test]
    fn loop_has_back_edge_and_bypass() {
        let c = cfg_of("fn f(&self, l: &L) { for e in l.iter() { e.step(); } }");
        // Some block must have the loop head as a successor twice-removed;
        // simplest check: a cycle exists among reachable blocks.
        let blocks = reachable(&c);
        let mut cyclic = false;
        for &b in &blocks {
            // DFS from each successor back to b.
            let mut stack: Vec<usize> = c.blocks[b].succs.clone();
            let mut seen = vec![false; c.blocks.len()];
            while let Some(n) = stack.pop() {
                if n == b {
                    cyclic = true;
                    break;
                }
                if !seen[n] {
                    seen[n] = true;
                    stack.extend(c.blocks[n].succs.iter().copied());
                }
            }
        }
        assert!(cyclic, "loop body should produce a CFG cycle");
        assert!(blocks.contains(&c.exit), "zero-iteration bypass missing");
    }

    #[test]
    fn try_exit_forks_to_exit_and_continuation() {
        let c = cfg_of("fn f(&self) -> R<()> { self.wal.append(r)?; self.p.mark_dirty(); Ok(()) }");
        // The block holding the Append must have two successors: exit + cont.
        let append_block = c
            .blocks
            .iter()
            .position(|b| b.events.iter().any(|e| matches!(e, Event::Append { .. })))
            .unwrap();
        assert!(c.blocks[append_block].succs.contains(&c.exit));
        assert_eq!(c.blocks[append_block].succs.len(), 2);
    }

    #[test]
    fn scope_exit_emits_implicit_drops() {
        let c = cfg_of("fn f(&self, pin: &Pin) { let g = pin.x(); g.touch(); }");
        let has_implicit = c
            .blocks
            .iter()
            .flat_map(|b| &b.events)
            .any(|e| matches!(e, Event::DropVar { var, implicit: true, .. } if var == "g"));
        assert!(has_implicit);
    }
}
