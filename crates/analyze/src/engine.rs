//! Scan driver: walks the workspace, runs the flow analyses and the
//! token-tier rules, resolves `// pitree-lint:` suppressions, and audits
//! the suppressions themselves.
//!
//! Suppression grammar (inside any comment):
//!
//! ```text
//! // pitree-lint: allow(rule-id) <reason — mandatory>
//! // pitree-lint: allow-file(rule-id) <reason — mandatory>
//! ```
//!
//! A line `allow` covers findings on its own line or the next line; an
//! `allow-file` covers the whole file. Every allow must suppress at least
//! one finding in the scan, or it is reported as `stale-allow` — the
//! violation it excused is gone and the annotation must go with it.
//!
//! The scan is whole-workspace because the flow rules are interprocedural:
//! the call graph, the latch-order graph, and the log-before-dirty
//! summaries all need every file at once. Token rules still apply
//! per-file afterwards, with the linear log-before-dirty scan re-armed
//! only for files the structural parser could not follow.

use crate::context::FileCx;
use crate::flow;
use crate::parse::{parse_file, FileAst};
use crate::rules::{run_token, Finding, RuleId};
use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

/// A parsed suppression directive.
#[derive(Debug, Clone)]
struct Allow {
    line: u32,
    rule: RuleId,
    whole_file: bool,
    used: usize,
}

impl Allow {
    /// Whether this allow covers a finding of `rule` at `line`.
    fn covers(&self, rule: RuleId, line: u32) -> bool {
        self.rule == rule && (self.whole_file || self.line == line || self.line + 1 == line)
    }
}

/// Scan outcome for a set of files.
#[derive(Debug, Default)]
pub struct Report {
    /// Findings that survived suppression (including meta diagnostics),
    /// sorted by path then line.
    pub findings: Vec<Finding>,
    /// Files scanned.
    pub files: usize,
    /// Per-rule surviving finding counts.
    pub fired: BTreeMap<RuleId, usize>,
    /// Per-rule suppressed finding counts.
    pub allowed: BTreeMap<RuleId, usize>,
    /// The latch-acquisition order graph (paper §4.1) in DOT form, with an
    /// `// acyclic: true|false` header line for cheap CI gating.
    pub latch_dot: String,
}

impl Report {
    /// Whether the scan is clean (no findings, no stale or malformed
    /// allows).
    pub fn clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Render the per-rule summary table.
    pub fn summary_table(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "{:<22} {:>8} {:>8}  {}\n",
            "rule", "findings", "allowed", "description"
        ));
        for rule in RuleId::ALL {
            s.push_str(&format!(
                "{:<22} {:>8} {:>8}  {}\n",
                rule.name(),
                self.fired.get(&rule).copied().unwrap_or(0),
                self.allowed.get(&rule).copied().unwrap_or(0),
                rule.describe()
            ));
        }
        for rule in [RuleId::LintAllow, RuleId::StaleAllow] {
            let n = self.fired.get(&rule).copied().unwrap_or(0);
            if n > 0 {
                s.push_str(&format!(
                    "{:<22} {:>8} {:>8}  {}\n",
                    rule.name(),
                    n,
                    0,
                    rule.describe()
                ));
            }
        }
        s.push_str(&format!("files scanned: {}\n", self.files));
        s
    }
}

/// Scan a set of `(workspace-relative path, source)` pairs as one unit.
/// This is the core entry point: flow rules see all files together.
pub fn scan_sources(files: &[(String, String)]) -> Report {
    let cxs: Vec<FileCx> = files.iter().map(|(p, s)| FileCx::new(p, s)).collect();
    let mut allows: Vec<Vec<Allow>> = Vec::with_capacity(cxs.len());
    let mut findings: Vec<Finding> = Vec::new();
    for cx in &cxs {
        let (a, f) = parse_allows(cx);
        allows.push(a);
        findings.extend(f);
    }
    let asts: Vec<FileAst> = cxs.iter().map(parse_file).collect();

    let mut allowed: BTreeMap<RuleId, usize> = BTreeMap::new();
    let (flow_findings, latch_dot) = {
        let mut sanction = |fi: usize, line: u32, rule: RuleId| -> bool {
            if let Some(a) = allows[fi].iter_mut().find(|a| a.covers(rule, line)) {
                a.used += 1;
                *allowed.entry(rule).or_insert(0) += 1;
                true
            } else {
                false
            }
        };
        flow::analyze(&asts, &mut sanction)
    };
    findings.extend(flow_findings);

    // Token tier. The linear log-before-dirty scan only re-arms for files
    // the structural parser could not follow.
    for (i, cx) in cxs.iter().enumerate() {
        for f in run_token(cx, !asts[i].parsed) {
            if let Some(a) = allows[i].iter_mut().find(|a| a.covers(f.rule, f.line)) {
                a.used += 1;
                *allowed.entry(f.rule).or_insert(0) += 1;
            } else {
                findings.push(f);
            }
        }
    }

    // Stale-suppression audit.
    for (i, cx) in cxs.iter().enumerate() {
        for a in &allows[i] {
            if a.used == 0 {
                findings.push(Finding {
                    path: cx.path.clone(),
                    line: a.line,
                    rule: RuleId::StaleAllow,
                    msg: format!(
                        "allow({}) suppresses nothing; the violation it excused is gone — \
                         remove the annotation",
                        a.rule
                    ),
                });
            }
        }
    }

    findings.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    let mut fired = BTreeMap::new();
    for f in &findings {
        *fired.entry(f.rule).or_insert(0) += 1;
    }
    Report {
        findings,
        files: cxs.len(),
        fired,
        allowed,
        latch_dot,
    }
}

/// Lint a single source text as the file at workspace-relative `path`.
/// This is the unit-test entry point; interprocedural rules see only this
/// one file.
pub fn lint_source(path: &str, src: &str) -> Vec<Finding> {
    scan_sources(&[(path.to_string(), src.to_string())]).findings
}

/// Extract `pitree-lint:` directives from the file's comments. Malformed
/// directives become immediate `lint-allow` findings.
fn parse_allows(cx: &FileCx) -> (Vec<Allow>, Vec<Finding>) {
    let mut allows = Vec::new();
    let mut findings = Vec::new();
    for c in &cx.comments {
        let Some(rest) = c.text.strip_prefix("pitree-lint:") else {
            continue;
        };
        let rest = rest.trim();
        let (whole_file, rest) = if let Some(r) = rest.strip_prefix("allow-file(") {
            (true, r)
        } else if let Some(r) = rest.strip_prefix("allow(") {
            (false, r)
        } else {
            findings.push(Finding {
                path: cx.path.clone(),
                line: c.line,
                rule: RuleId::LintAllow,
                msg: format!(
                    "unrecognized pitree-lint directive `{}`; expected \
                     `allow(rule-id) reason` or `allow-file(rule-id) reason`",
                    rest
                ),
            });
            continue;
        };
        let Some(close) = rest.find(')') else {
            findings.push(Finding {
                path: cx.path.clone(),
                line: c.line,
                rule: RuleId::LintAllow,
                msg: "unterminated allow(...) directive".to_string(),
            });
            continue;
        };
        let id = rest[..close].trim();
        let reason = rest[close + 1..].trim();
        let Some(rule) = RuleId::parse(id) else {
            findings.push(Finding {
                path: cx.path.clone(),
                line: c.line,
                rule: RuleId::LintAllow,
                msg: format!("unknown rule `{id}` in allow directive"),
            });
            continue;
        };
        if reason.is_empty() {
            findings.push(Finding {
                path: cx.path.clone(),
                line: c.line,
                rule: RuleId::LintAllow,
                msg: format!(
                    "allow({rule}) without a reason; suppressions must say why \
                     the rule does not apply"
                ),
            });
            continue;
        }
        allows.push(Allow {
            line: c.line,
            rule,
            whole_file,
            used: 0,
        });
    }
    (allows, findings)
}

/// Recursively collect `.rs` files under `root`, skipping build output and
/// VCS metadata. Paths come back workspace-relative and sorted.
pub fn collect_rs_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if name == "target" || name == ".git" || name.starts_with('.') {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Scan the workspace rooted at `root`.
pub fn scan_workspace(root: &Path) -> std::io::Result<Report> {
    let mut sources = Vec::new();
    for abs in collect_rs_files(root)? {
        let rel = abs
            .strip_prefix(root)
            .unwrap_or(&abs)
            .to_string_lossy()
            .replace('\\', "/");
        sources.push((rel, fs::read_to_string(&abs)?));
    }
    Ok(scan_sources(&sources))
}
