//! Scan driver: walks the workspace, applies rules, resolves
//! `// pitree-lint:` suppressions, and audits the suppressions themselves.
//!
//! Suppression grammar (inside any comment):
//!
//! ```text
//! // pitree-lint: allow(rule-id) <reason — mandatory>
//! // pitree-lint: allow-file(rule-id) <reason — mandatory>
//! ```
//!
//! A line `allow` covers findings on its own line or the next line; an
//! `allow-file` covers the whole file. Every allow must suppress at least
//! one finding in the scan, or it is reported as `stale-allow` — the
//! violation it excused is gone and the annotation must go with it.

use crate::context::FileCx;
use crate::rules::{run_all, Finding, RuleId};
use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

/// A parsed suppression directive.
#[derive(Debug, Clone)]
struct Allow {
    line: u32,
    rule: RuleId,
    whole_file: bool,
    used: usize,
}

/// Scan outcome for a set of files.
#[derive(Debug, Default)]
pub struct Report {
    /// Findings that survived suppression (including meta diagnostics),
    /// sorted by path then line.
    pub findings: Vec<Finding>,
    /// Files scanned.
    pub files: usize,
    /// Per-rule surviving finding counts.
    pub fired: BTreeMap<RuleId, usize>,
    /// Per-rule suppressed finding counts.
    pub allowed: BTreeMap<RuleId, usize>,
}

impl Report {
    /// Whether the scan is clean (no findings, no stale or malformed
    /// allows).
    pub fn clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Render the per-rule summary table.
    pub fn summary_table(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "{:<22} {:>8} {:>8}  {}\n",
            "rule", "findings", "allowed", "description"
        ));
        for rule in RuleId::ALL {
            s.push_str(&format!(
                "{:<22} {:>8} {:>8}  {}\n",
                rule.name(),
                self.fired.get(&rule).copied().unwrap_or(0),
                self.allowed.get(&rule).copied().unwrap_or(0),
                rule.describe()
            ));
        }
        for rule in [RuleId::LintAllow, RuleId::StaleAllow] {
            let n = self.fired.get(&rule).copied().unwrap_or(0);
            if n > 0 {
                s.push_str(&format!(
                    "{:<22} {:>8} {:>8}  {}\n",
                    rule.name(),
                    n,
                    0,
                    rule.describe()
                ));
            }
        }
        s.push_str(&format!("files scanned: {}\n", self.files));
        s
    }
}

/// Lint a single source text as the file at workspace-relative `path`.
/// This is the unit-test entry point; the directory scan calls it per file.
pub fn lint_source(path: &str, src: &str) -> Vec<Finding> {
    lint_file(path, src).0
}

/// Lint one file: surviving findings plus per-rule suppressed counts.
fn lint_file(path: &str, src: &str) -> (Vec<Finding>, BTreeMap<RuleId, usize>) {
    let cx = FileCx::new(path, src);
    let (mut allows, mut findings) = parse_allows(&cx);
    let mut suppressed = BTreeMap::new();
    for f in run_all(&cx) {
        if let Some(a) = allows.iter_mut().find(|a| {
            a.rule == f.rule && (a.whole_file || a.line == f.line || a.line + 1 == f.line)
        }) {
            a.used += 1;
            *suppressed.entry(f.rule).or_insert(0) += 1;
        } else {
            findings.push(f);
        }
    }
    for a in &allows {
        if a.used == 0 {
            findings.push(Finding {
                path: cx.path.clone(),
                line: a.line,
                rule: RuleId::StaleAllow,
                msg: format!(
                    "allow({}) suppresses nothing; the violation it excused is gone — \
                     remove the annotation",
                    a.rule
                ),
            });
        }
    }
    findings.sort_by_key(|f| (f.line, f.rule));
    (findings, suppressed)
}

/// Extract `pitree-lint:` directives from the file's comments. Malformed
/// directives become immediate `lint-allow` findings.
fn parse_allows(cx: &FileCx) -> (Vec<Allow>, Vec<Finding>) {
    let mut allows = Vec::new();
    let mut findings = Vec::new();
    for c in &cx.comments {
        let Some(rest) = c.text.strip_prefix("pitree-lint:") else {
            continue;
        };
        let rest = rest.trim();
        let (whole_file, rest) = if let Some(r) = rest.strip_prefix("allow-file(") {
            (true, r)
        } else if let Some(r) = rest.strip_prefix("allow(") {
            (false, r)
        } else {
            findings.push(Finding {
                path: cx.path.clone(),
                line: c.line,
                rule: RuleId::LintAllow,
                msg: format!(
                    "unrecognized pitree-lint directive `{}`; expected \
                     `allow(rule-id) reason` or `allow-file(rule-id) reason`",
                    rest
                ),
            });
            continue;
        };
        let Some(close) = rest.find(')') else {
            findings.push(Finding {
                path: cx.path.clone(),
                line: c.line,
                rule: RuleId::LintAllow,
                msg: "unterminated allow(...) directive".to_string(),
            });
            continue;
        };
        let id = rest[..close].trim();
        let reason = rest[close + 1..].trim();
        let Some(rule) = RuleId::parse(id) else {
            findings.push(Finding {
                path: cx.path.clone(),
                line: c.line,
                rule: RuleId::LintAllow,
                msg: format!("unknown rule `{id}` in allow directive"),
            });
            continue;
        };
        if reason.is_empty() {
            findings.push(Finding {
                path: cx.path.clone(),
                line: c.line,
                rule: RuleId::LintAllow,
                msg: format!(
                    "allow({rule}) without a reason; suppressions must say why \
                     the rule does not apply"
                ),
            });
            continue;
        }
        allows.push(Allow {
            line: c.line,
            rule,
            whole_file,
            used: 0,
        });
    }
    (allows, findings)
}

/// Recursively collect `.rs` files under `root`, skipping build output and
/// VCS metadata. Paths come back workspace-relative and sorted.
pub fn collect_rs_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if name == "target" || name == ".git" || name.starts_with('.') {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Scan the workspace rooted at `root`.
pub fn scan_workspace(root: &Path) -> std::io::Result<Report> {
    let mut report = Report::default();
    for abs in collect_rs_files(root)? {
        let rel = abs
            .strip_prefix(root)
            .unwrap_or(&abs)
            .to_string_lossy()
            .replace('\\', "/");
        let src = fs::read_to_string(&abs)?;
        report.files += 1;
        let (findings, suppressed) = lint_file(&rel, &src);
        for f in findings {
            *report.fired.entry(f.rule).or_insert(0) += 1;
            report.findings.push(f);
        }
        for (rule, n) in suppressed {
            *report.allowed.entry(rule).or_insert(0) += n;
        }
    }
    report
        .findings
        .sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    Ok(report)
}
