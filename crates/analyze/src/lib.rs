//! `pitree-lint`: a std-only static analyzer that enforces the workspace's
//! Π-tree protocol disciplines at the source level.
//!
//! The correctness of the paper's protocol (Lomet & Salzberg, SIGMOD 1992)
//! rests on conventions a compiler cannot see: top-down latch order with
//! U→X promotion (§4.1), the No-Wait Rule for completion paths (§4.2.2),
//! log-before-dirty WAL discipline (§4.3.1), and panic-free redo/undo
//! (§4.3.2). The runtime debug checks (latch rank stack, sim sweeps) catch
//! violations on the interleavings we happen to execute; this linter
//! catches the violating *code shapes* on every path.
//!
//! No `syn`, no dependencies: a light lexer strips comments and literals,
//! and each rule pattern-matches the token stream with just enough
//! structure (brace depth, `fn` spans, test regions). See
//! [`rules`] for the rule catalogue and DESIGN.md §8 for the
//! rule-to-paper-section map.

pub mod context;
pub mod engine;
pub mod lexer;
pub mod rules;

pub use engine::{lint_source, scan_workspace, Report};
pub use rules::{Finding, RuleId};
