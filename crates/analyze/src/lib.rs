//! `pitree-lint` / `pitree-flow`: a std-only static analyzer that enforces
//! the workspace's Π-tree protocol disciplines at the source level.
//!
//! The correctness of the paper's protocol (Lomet & Salzberg, SIGMOD 1992)
//! rests on conventions a compiler cannot see: top-down latch order with
//! U→X promotion (§4.1), the No-Wait Rule for completion paths (§4.2.2),
//! log-before-dirty WAL discipline (§4.3.1), and panic-free redo/undo
//! (§4.3.2). The runtime debug checks (latch rank stack, sim sweeps) catch
//! violations on the interleavings we happen to execute; this analyzer
//! catches the violating *code shapes* on every path.
//!
//! No `syn`, no dependencies. Two tiers:
//!
//! - **flow tier** ([`parse`] → [`mod@cfg`] → [`callgraph`] → [`flow`]): a
//!   recursive-descent structural parser over the token stream builds
//!   per-function CFGs (branches, loops, match arms, early returns, `?`)
//!   and a whole-workspace call graph, and abstract interpretation over
//!   latch-guard states proves the latch-order, guard-lifetime,
//!   log-before-dirty, and no-wait disciplines on *every* path — including
//!   through helper calls. The latch-acquisition order graph is emitted as
//!   a DOT artifact with cycle detection.
//! - **token tier** ([`rules`]): the original per-file pattern rules,
//!   which also serve as the fallback when a file defeats the structural
//!   parser — the gate never weakens.
//!
//! See [`rules`] for the rule catalogue and DESIGN.md §8 for the
//! rule-to-paper-section map.

pub mod callgraph;
pub mod cfg;
pub mod context;
pub mod engine;
pub mod flow;
pub mod lexer;
pub mod parse;
pub mod rules;

pub use engine::{lint_source, scan_sources, scan_workspace, Report};
pub use rules::{Finding, RuleId};
