//! Per-file analysis context: the token stream plus the light structure the
//! rules need — brace depth per token, `fn` body spans, and test regions
//! (`#[cfg(test)] mod`, `#[test]`/`#[bench]` functions, `tests/`, `benches/`
//! and `examples/` paths).

use crate::lexer::{lex, Comment, TokKind, Token};

/// One function body: `tokens[body_start..=body_end]` are inside the braces.
#[derive(Debug, Clone)]
pub struct FnSpan {
    /// The function's name.
    pub name: String,
    /// Index of the opening `{` token.
    pub body_start: usize,
    /// Index of the matching `}` token.
    pub body_end: usize,
}

/// A lexed file ready for rule application.
#[derive(Debug)]
pub struct FileCx {
    /// Workspace-relative path, `/`-separated.
    pub path: String,
    /// Token stream (comments and literal contents stripped).
    pub tokens: Vec<Token>,
    /// Captured comments, for `pitree-lint:` directives.
    pub comments: Vec<Comment>,
    /// Brace depth *before* each token (`{` itself sits at the outer depth).
    pub depth: Vec<u32>,
    /// Function body spans, in source order (outermost first for nested fns).
    pub fns: Vec<FnSpan>,
    /// Per-token flag: true inside test-only code.
    pub is_test: Vec<bool>,
}

impl FileCx {
    /// Lex and structure `src` as the file at workspace-relative `path`.
    pub fn new(path: &str, src: &str) -> FileCx {
        let (tokens, comments) = lex(src);
        let depth = brace_depths(&tokens);
        let fns = fn_spans(&tokens);
        let is_test = test_flags(path, &tokens, &fns);
        FileCx {
            path: path.replace('\\', "/"),
            tokens,
            comments,
            depth,
            fns,
            is_test,
        }
    }

    /// Whether token `i` starts a method call `.name(`; returns the name.
    pub fn method_call_at(&self, i: usize) -> Option<&str> {
        if !self.tokens[i].is_punct('.') {
            return None;
        }
        let name = self.tokens.get(i + 1)?;
        if name.kind != TokKind::Ident {
            return None;
        }
        if !self.tokens.get(i + 2)?.is_punct('(') {
            return None;
        }
        Some(&name.text)
    }

    /// Whether the identifier at `i` is part of the path `a::b` ending here
    /// (i.e. tokens `a` `::` ... `b` with `b` at `i`).
    pub fn path_prefix_is(&self, i: usize, prefix: &str) -> bool {
        // tokens[i] is an ident; check tokens[i-2] == prefix with `::` between.
        i >= 3
            && self.tokens[i - 1].is_punct(':')
            && self.tokens[i - 2].is_punct(':')
            && self.tokens[i - 3].is_ident(prefix)
    }
}

/// Brace depth before each token.
fn brace_depths(tokens: &[Token]) -> Vec<u32> {
    let mut out = Vec::with_capacity(tokens.len());
    let mut d = 0u32;
    for t in tokens {
        if t.is_punct('}') {
            d = d.saturating_sub(1);
        }
        out.push(d);
        if t.is_punct('{') {
            d += 1;
        }
    }
    out
}

/// Find `fn` bodies. Trait-method declarations (`fn f(...);`) have no body
/// and are skipped.
fn fn_spans(tokens: &[Token]) -> Vec<FnSpan> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].is_ident("fn") {
            let name = match tokens.get(i + 1) {
                Some(t) if t.kind == TokKind::Ident => t.text.clone(),
                _ => {
                    i += 1;
                    continue;
                }
            };
            // Scan to the body `{` at bracket depth 0, or a `;` (no body).
            let mut j = i + 2;
            let mut paren = 0i32;
            let mut angle_guard = 0i32; // avoid `->` / where-clause confusion cheaply
            let body = loop {
                match tokens.get(j) {
                    None => break None,
                    Some(t) if t.is_punct('(') || t.is_punct('[') => paren += 1,
                    Some(t) if t.is_punct(')') || t.is_punct(']') => paren -= 1,
                    Some(t) if t.is_punct('<') => angle_guard += 1,
                    Some(t) if t.is_punct('>') => angle_guard -= 1,
                    Some(t) if t.is_punct(';') && paren == 0 => break None,
                    Some(t) if t.is_punct('{') && paren == 0 => break Some(j),
                    _ => {}
                }
                j += 1;
            };
            let _ = angle_guard;
            if let Some(start) = body {
                let end = matching_brace(tokens, start);
                out.push(FnSpan {
                    name,
                    body_start: start,
                    body_end: end,
                });
            }
            i += 2;
            continue;
        }
        i += 1;
    }
    out
}

/// Index of the `}` matching the `{` at `open`.
pub fn matching_brace(tokens: &[Token], open: usize) -> usize {
    let mut d = 0i32;
    for (j, t) in tokens.iter().enumerate().skip(open) {
        if t.is_punct('{') {
            d += 1;
        } else if t.is_punct('}') {
            d -= 1;
            if d == 0 {
                return j;
            }
        }
    }
    tokens.len().saturating_sub(1)
}

/// Mark tokens that are test-only: whole files under `tests/`, `benches/`
/// or `examples/`, bodies of `#[cfg(test)] mod`, and `#[test]`/`#[bench]`
/// functions.
fn test_flags(path: &str, tokens: &[Token], fns: &[FnSpan]) -> Vec<bool> {
    let mut flags = vec![false; tokens.len()];
    let p = path.replace('\\', "/");
    if p.contains("/tests/")
        || p.contains("/benches/")
        || p.contains("/examples/")
        || p.starts_with("tests/")
        || p.starts_with("benches/")
        || p.starts_with("examples/")
    {
        flags.iter_mut().for_each(|f| *f = true);
        return flags;
    }
    let mut i = 0;
    while i + 1 < tokens.len() {
        // `#[cfg(test)]` or `#[test]` / `#[bench]` attribute?
        if tokens[i].is_punct('#') && tokens[i + 1].is_punct('[') {
            let close = matching_bracket(tokens, i + 1);
            let inner: Vec<&str> = tokens[i + 2..close]
                .iter()
                .filter(|t| t.kind == TokKind::Ident)
                .map(|t| t.text.as_str())
                .collect();
            let is_cfg_test = inner.first() == Some(&"cfg") && inner.contains(&"test");
            let is_test_attr = inner == ["test"] || inner == ["bench"];
            if is_cfg_test || is_test_attr {
                // Skip any further attributes, then find the guarded item's
                // body brace.
                let mut j = close + 1;
                while j + 1 < tokens.len() && tokens[j].is_punct('#') && tokens[j + 1].is_punct('[')
                {
                    j = matching_bracket(tokens, j + 1) + 1;
                }
                // Walk to the item's opening `{` (stop at `;` = no body).
                let mut k = j;
                let mut paren = 0i32;
                while k < tokens.len() {
                    let t = &tokens[k];
                    if t.is_punct('(') || t.is_punct('[') {
                        paren += 1;
                    } else if t.is_punct(')') || t.is_punct(']') {
                        paren -= 1;
                    } else if t.is_punct(';') && paren == 0 {
                        break;
                    } else if t.is_punct('{') && paren == 0 {
                        let end = matching_brace(tokens, k);
                        for f in flags.iter_mut().take(end + 1).skip(i) {
                            *f = true;
                        }
                        break;
                    }
                    k += 1;
                }
            }
            i = close + 1;
            continue;
        }
        i += 1;
    }
    let _ = fns;
    flags
}

/// Index of the `]` matching the `[` at `open`.
pub(crate) fn matching_bracket(tokens: &[Token], open: usize) -> usize {
    let mut d = 0i32;
    for (j, t) in tokens.iter().enumerate().skip(open) {
        if t.is_punct('[') {
            d += 1;
        } else if t.is_punct(']') {
            d -= 1;
            if d == 0 {
                return j;
            }
        }
    }
    tokens.len().saturating_sub(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fn_spans_found() {
        let cx = FileCx::new("crates/x/src/lib.rs", "fn a() { b(); } fn c() -> u32 { 1 }");
        assert_eq!(cx.fns.len(), 2);
        assert_eq!(cx.fns[0].name, "a");
        assert_eq!(cx.fns[1].name, "c");
    }

    #[test]
    fn trait_decl_has_no_body() {
        let cx = FileCx::new(
            "crates/x/src/lib.rs",
            "trait T { fn f(&self) -> u8; } fn g() {}",
        );
        assert_eq!(cx.fns.len(), 1);
        assert_eq!(cx.fns[0].name, "g");
    }

    #[test]
    fn cfg_test_mod_is_test_code() {
        let src = "fn live() {} #[cfg(test)] mod tests { fn helper() {} }";
        let cx = FileCx::new("crates/x/src/lib.rs", src);
        let live = cx.fns.iter().find(|f| f.name == "live").unwrap();
        let helper = cx.fns.iter().find(|f| f.name == "helper").unwrap();
        assert!(!cx.is_test[live.body_start]);
        assert!(cx.is_test[helper.body_start]);
    }

    #[test]
    fn tests_dir_is_all_test_code() {
        let cx = FileCx::new("crates/x/tests/t.rs", "fn anything() {}");
        assert!(cx.is_test.iter().all(|&f| f));
    }

    #[test]
    fn test_attr_fn_is_test_code() {
        let src = "#[test] fn t() { x(); } fn live() {}";
        let cx = FileCx::new("crates/x/src/lib.rs", src);
        let t = cx.fns.iter().find(|f| f.name == "t").unwrap();
        let live = cx.fns.iter().find(|f| f.name == "live").unwrap();
        assert!(cx.is_test[t.body_start]);
        assert!(!cx.is_test[live.body_start]);
    }

    #[test]
    fn method_call_detection() {
        let cx = FileCx::new("crates/x/src/lib.rs", "fn f() { a.lock(); a.lock; }");
        let calls: Vec<usize> = (0..cx.tokens.len())
            .filter(|&i| cx.method_call_at(i) == Some("lock"))
            .collect();
        assert_eq!(calls.len(), 1);
    }
}
