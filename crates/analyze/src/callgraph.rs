//! Whole-workspace call graph by name/arity resolution.
//!
//! Without type information, a call site resolves to *every* workspace
//! function whose name and arity are compatible. That over-approximation
//! is the right direction for the reachability rules (no-wait) and is
//! narrowed by intersection for the "all targets discharge the
//! obligation" summaries (log-before-dirty), which treat multi-candidate
//! sites conservatively.

use std::collections::BTreeMap;

/// Call-site resolution over the workspace function list.
#[derive(Debug)]
pub struct CallGraph {
    /// name → indices of functions with that name.
    by_name: BTreeMap<String, Vec<usize>>,
    /// Per-function (param count excl. self, has_self).
    sigs: Vec<(usize, bool)>,
}

impl CallGraph {
    /// Build from `(name, params-excl-self, has_self)` per function, indexed
    /// in the same order the caller uses for function ids.
    pub fn new(fns: &[(String, usize, bool)]) -> CallGraph {
        let mut by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        let mut sigs = Vec::with_capacity(fns.len());
        for (i, (name, params, has_self)) in fns.iter().enumerate() {
            by_name.entry(name.clone()).or_default().push(i);
            sigs.push((*params, *has_self));
        }
        CallGraph { by_name, sigs }
    }

    /// Candidate callees for a call site: `name` with `args` arguments,
    /// `method = true` for `.name(...)` syntax.
    pub fn resolve(&self, name: &str, args: usize, method: bool) -> Vec<usize> {
        let Some(ids) = self.by_name.get(name) else {
            return Vec::new();
        };
        ids.iter()
            .copied()
            .filter(|&i| {
                let (params, has_self) = self.sigs[i];
                if method {
                    // Receiver is implicit; arity must match exactly.
                    has_self && params == args
                } else {
                    // Free call, or UFCS `Type::f(recv, ...)` where the
                    // receiver occupies the first argument slot.
                    params == args || (has_self && args > 0 && params == args - 1)
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn method_resolution_requires_self_and_arity() {
        let g = CallGraph::new(&[
            ("split".into(), 2, true),
            ("split".into(), 2, false),
            ("split".into(), 1, true),
        ]);
        assert_eq!(g.resolve("split", 2, true), vec![0]);
    }

    #[test]
    fn free_call_matches_arity_or_ufcs() {
        let g = CallGraph::new(&[("post".into(), 1, true), ("post".into(), 2, false)]);
        // `post(a, b)` free call: matches the 2-param free fn AND the
        // 1-param method via UFCS.
        assert_eq!(g.resolve("post", 2, false), vec![0, 1]);
    }

    #[test]
    fn unknown_name_resolves_to_nothing() {
        let g = CallGraph::new(&[("f".into(), 0, false)]);
        assert!(g.resolve("g", 0, false).is_empty());
    }
}
