//! `pitree-lint` — scan the workspace for Π-tree protocol violations.
//!
//! ```text
//! pitree-lint [ROOT]       # scan (default: current directory), print
//!                          # findings + rule summary, exit 1 on findings
//! pitree-lint --list-rules # print the rule catalogue and exit
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--list-rules" => {
                for rule in analyze::RuleId::ALL {
                    println!("{:<22} {}", rule.name(), rule.describe());
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!("usage: pitree-lint [ROOT] [--list-rules]");
                return ExitCode::SUCCESS;
            }
            other => root = PathBuf::from(other),
        }
    }
    let report = match analyze::scan_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("pitree-lint: scan failed: {e}");
            return ExitCode::from(2);
        }
    };
    for f in &report.findings {
        println!("{f}");
    }
    if !report.findings.is_empty() {
        println!();
    }
    print!("{}", report.summary_table());
    if report.clean() {
        println!("pitree-lint: clean");
        ExitCode::SUCCESS
    } else {
        println!("pitree-lint: {} finding(s)", report.findings.len());
        ExitCode::FAILURE
    }
}
