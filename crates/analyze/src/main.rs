//! `pitree-lint` — scan the workspace for Π-tree protocol violations.
//!
//! ```text
//! pitree-lint [ROOT]       # scan (default: current directory), print
//!                          # findings + rule summary, exit 1 on findings
//! pitree-lint --dot PATH   # also write the latch-acquisition order graph
//!                          # (paper 4.1) as DOT to PATH
//! pitree-lint --list-rules # print the rule catalogue and exit
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut dot_out: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--list-rules" => {
                for rule in analyze::RuleId::ALL {
                    println!("{:<22} {}", rule.name(), rule.describe());
                }
                return ExitCode::SUCCESS;
            }
            "--dot" => {
                let Some(path) = args.next() else {
                    eprintln!("pitree-lint: --dot needs a path");
                    return ExitCode::from(2);
                };
                dot_out = Some(PathBuf::from(path));
            }
            "--help" | "-h" => {
                println!("usage: pitree-lint [ROOT] [--dot PATH] [--list-rules]");
                return ExitCode::SUCCESS;
            }
            other => root = PathBuf::from(other),
        }
    }
    let report = match analyze::scan_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("pitree-lint: scan failed: {e}");
            return ExitCode::from(2);
        }
    };
    if let Some(path) = dot_out {
        if let Err(e) = std::fs::write(&path, &report.latch_dot) {
            eprintln!("pitree-lint: writing {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }
    for f in &report.findings {
        println!("{f}");
    }
    if !report.findings.is_empty() {
        println!();
    }
    print!("{}", report.summary_table());
    if report.clean() {
        println!("pitree-lint: clean");
        ExitCode::SUCCESS
    } else {
        println!("pitree-lint: {} finding(s)", report.findings.len());
        ExitCode::FAILURE
    }
}
