//! Structural parser: token stream → per-function event trees.
//!
//! This is not a Rust parser; it recovers exactly the structure the flow
//! analyses need — statement sequencing, branching (`if`/`else`, `match`
//! arms, `let ... else`), loops, early exits (`return`, `?`, `break`,
//! `continue`), and lexical scopes with their guard bindings — and reduces
//! everything else to a flat stream of protocol-relevant [`Event`]s:
//! latch acquisitions, guard drops/moves, WAL appends, page dirtying,
//! blocking lock acquisition, blocking waits, and calls (for the call
//! graph). Unknown constructs degrade to "no event", never to a parse
//! abort; a function we cannot follow sets `FileAst::parsed = false`,
//! which re-arms the token-tier fallback rules for that file.

use crate::context::{matching_brace, matching_bracket, FileCx};
use crate::lexer::{TokKind, Token};
use std::collections::BTreeMap;

/// Latch mode of an acquisition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Shared.
    S,
    /// Update.
    U,
    /// Exclusive.
    X,
}

impl Mode {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Mode::S => "S",
            Mode::U => "U",
            Mode::X => "X",
        }
    }
}

/// One protocol-relevant action, in program order within its block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// Latch acquisition: `recv.s()` / `.u()` / `.x()` (blocking) or the
    /// `try_` variants (conditional). `var` is the guard binding when the
    /// statement is a `let`/assignment; `recv` the receiver identifier.
    Acquire {
        /// Requested mode.
        mode: Mode,
        /// `false` for `try_*` acquisition.
        blocking: bool,
        /// Receiver identifier (used for latch-class inference).
        recv: Option<String>,
        /// Guard binding, when assigned to a variable.
        var: Option<String>,
        /// Source line.
        line: u32,
    },
    /// `recv.promote()`: consumes the receiver's guard, yields a new one.
    Promote {
        /// The guard being promoted (consumed).
        recv: Option<String>,
        /// New guard binding.
        var: Option<String>,
        /// Source line.
        line: u32,
    },
    /// `drop(var)`, or the synthetic release at scope exit (`implicit`).
    DropVar {
        /// The dropped binding.
        var: String,
        /// Source line (0 for synthetic scope-exit drops).
        line: u32,
        /// Synthetic scope-exit drop: releases silently, never a finding.
        implicit: bool,
    },
    /// `dst = src;` — a move; `dst`'s previous guard (if any) is released.
    AssignVar {
        /// Assignment target.
        dst: String,
        /// Moved-from source.
        src: String,
        /// Source line.
        line: u32,
    },
    /// `forget(var)` / `mem::forget(var)`: the guard leaks.
    Forget {
        /// Leaked binding, when a plain identifier.
        var: Option<String>,
        /// Source line.
        line: u32,
    },
    /// WAL `.append(...)`.
    Append {
        /// Source line.
        line: u32,
    },
    /// Page dirtying: `.mark_dirty()` / `.mark_dirty_at(...)` / `.data_mut()`.
    Dirty {
        /// Which dirtying method.
        method: String,
        /// Source line.
        line: u32,
    },
    /// Blocking lock acquisition: `.lock(args...)` / `.acquire(args...)`
    /// with ≥1 argument (the txn-lock API), or `.lock_alloc()`.
    BlockingLock {
        /// Method name.
        what: String,
        /// Source line.
        line: u32,
    },
    /// A blocking wait: condvar/durability waits, `force`/`force_to`,
    /// 0-arg `join`/`recv`, `sleep(...)`.
    Wait {
        /// Method name.
        what: String,
        /// Source line.
        line: u32,
    },
    /// Any other call, kept for call-graph resolution. `moved` lists plain
    /// by-value identifier arguments (guards moved into the callee).
    Call {
        /// Callee name (method name or free-function name).
        name: String,
        /// Argument count (including the receiver-position argument for
        /// UFCS-style `Type::f(&x, ...)` free calls).
        args: usize,
        /// `true` for `.name(...)` method syntax.
        method: bool,
        /// Identifiers passed by value (not behind `&`).
        moved: Vec<String>,
        /// Source line.
        line: u32,
    },
}

/// Structured function body.
#[derive(Debug, Clone)]
pub enum Node {
    /// Sequential composition.
    Seq(Vec<Node>),
    /// A single event.
    Event(Event),
    /// One alternative is taken.
    Branch(Vec<Node>),
    /// Body may run zero or more times.
    Loop(Box<Node>),
    /// Lexical scope; the listed bindings are dropped at scope exit.
    Scope(Box<Node>, Vec<String>),
    /// `return ...;`
    Return,
    /// `?`: either early-exit or continue.
    TryExit,
    /// `break` (to innermost loop's exit).
    Break,
    /// `continue` (to innermost loop's head).
    Continue,
}

/// One parsed function.
#[derive(Debug, Clone)]
pub struct FnDef {
    /// Function name.
    pub name: String,
    /// Parameter count, excluding `self`.
    pub params: usize,
    /// Whether the function takes `self`.
    pub has_self: bool,
    /// Line of the `fn` keyword.
    pub line: u32,
    /// Inside test-only code.
    pub is_test: bool,
    /// Structured body.
    pub body: Node,
}

/// One parsed file.
#[derive(Debug, Clone)]
pub struct FileAst {
    /// Workspace-relative path.
    pub path: String,
    /// All functions (including test functions, flagged).
    pub fns: Vec<FnDef>,
    /// False when some construct could not be followed; the token-tier
    /// fallback rules re-arm for this file.
    pub parsed: bool,
}

/// Parse every function in `cx`.
pub fn parse_file(cx: &FileCx) -> FileAst {
    let sigs = signatures(&cx.tokens);
    let mut fns = Vec::new();
    let mut parsed = true;
    for span in &cx.fns {
        let (params, has_self, line) = sigs.get(&span.body_start).copied().unwrap_or((
            0,
            false,
            cx.tokens[span.body_start].line,
        ));
        let mut p = Parser {
            toks: &cx.tokens,
            ok: true,
        };
        let mut binds = Vec::new();
        let body = p.stmts(span.body_start + 1, span.body_end, &mut binds);
        if !p.ok {
            parsed = false;
        }
        fns.push(FnDef {
            name: span.name.clone(),
            params,
            has_self,
            line,
            is_test: cx.is_test[span.body_start],
            body: Node::Scope(Box::new(body), binds),
        });
    }
    FileAst {
        path: cx.path.clone(),
        fns,
        parsed,
    }
}

/// Map body-brace index → (param count excl. self, has_self, line), by
/// scanning each `fn` signature: generics are skipped with `->`-guarded
/// angle tracking; parameters are counted as top-level `:` occurrences
/// (every parameter except `self` carries exactly one).
fn signatures(toks: &[Token]) -> BTreeMap<usize, (usize, bool, u32)> {
    let mut out = BTreeMap::new();
    let mut i = 0;
    while i < toks.len() {
        if !(toks[i].is_ident("fn") && toks.get(i + 1).is_some_and(|t| t.kind == TokKind::Ident)) {
            i += 1;
            continue;
        }
        let line = toks[i].line;
        // Find the parameter `(` at angle depth 0.
        let mut j = i + 2;
        let mut angle = 0i32;
        let popen = loop {
            match toks.get(j) {
                None => break None,
                Some(t) if t.is_punct('<') => angle += 1,
                Some(t) if t.is_punct('>') && !(j > 0 && toks[j - 1].is_punct('-')) => {
                    angle -= 1;
                }
                Some(t) if t.is_punct('(') && angle == 0 => break Some(j),
                Some(t) if t.is_punct('{') || t.is_punct(';') => break None,
                _ => {}
            }
            j += 1;
        };
        let Some(popen) = popen else {
            i += 2;
            continue;
        };
        let (params, has_self, close) = param_count(toks, popen);
        // Find the body `{` (or `;` for a bodyless declaration).
        let mut k = close + 1;
        let mut depth = 0i32;
        let body = loop {
            match toks.get(k) {
                None => break None,
                Some(t) if t.is_punct('(') || t.is_punct('[') => depth += 1,
                Some(t) if t.is_punct(')') || t.is_punct(']') => depth -= 1,
                Some(t) if t.is_punct(';') && depth == 0 => break None,
                Some(t) if t.is_punct('{') && depth == 0 => break Some(k),
                _ => {}
            }
            k += 1;
        };
        if let Some(b) = body {
            out.insert(b, (params, has_self, line));
        }
        i += 2;
    }
    out
}

/// Count parameters inside the paren group at `open`; returns
/// (params excl. self, has_self, index of the closing paren).
fn param_count(toks: &[Token], open: usize) -> (usize, bool, usize) {
    let mut depth = 0i32;
    let mut angle = 0i32;
    let mut colons = 0usize;
    let mut has_self = false;
    let mut i = open;
    let mut close = toks.len().saturating_sub(1);
    while i < toks.len() {
        let t = &toks[i];
        if t.kind == TokKind::Punct {
            match t.text.as_bytes().first().copied().unwrap_or(b' ') {
                b'(' | b'[' | b'{' => depth += 1,
                b')' | b']' | b'}' => {
                    depth -= 1;
                    if depth == 0 {
                        close = i;
                        break;
                    }
                }
                b'<' if depth == 1 => angle += 1,
                b'>' if depth == 1 && !(i > 0 && toks[i - 1].is_punct('-')) => {
                    angle -= 1;
                }
                b':' if depth == 1 && angle == 0 => {
                    let prev_colon = i > 0 && toks[i - 1].is_punct(':');
                    let next_colon = toks.get(i + 1).is_some_and(|t| t.is_punct(':'));
                    if !prev_colon && !next_colon {
                        colons += 1;
                    }
                }
                _ => {}
            }
        } else if t.is_ident("self") && depth == 1 && angle == 0 {
            has_self = true;
        }
        i += 1;
    }
    (colons, has_self, close)
}

const KEYWORDS: [&str; 24] = [
    "if", "else", "match", "while", "for", "loop", "return", "break", "continue", "let", "mut",
    "ref", "move", "in", "as", "fn", "pub", "use", "mod", "impl", "trait", "struct", "enum",
    "where",
];

struct Parser<'a> {
    toks: &'a [Token],
    ok: bool,
}

impl<'a> Parser<'a> {
    /// Parse statements in `[i, end)` into a `Seq`. Bindings declared here
    /// (guards from `let` statements) are appended to `binds`, which the
    /// enclosing scope drops on exit.
    fn stmts(&mut self, mut i: usize, end: usize, binds: &mut Vec<String>) -> Node {
        let mut out = Vec::new();
        while i < end {
            let before = i;
            let t = &self.toks[i];
            if t.kind == TokKind::Punct {
                match t.text.as_bytes().first().copied().unwrap_or(b' ') {
                    b'{' => {
                        let (n, ni) = self.block(i);
                        out.push(n);
                        i = ni;
                    }
                    b'#' if self.toks.get(i + 1).is_some_and(|t| t.is_punct('[')) => {
                        i = matching_bracket(self.toks, i + 1) + 1;
                    }
                    b'?' => {
                        out.push(Node::TryExit);
                        i += 1;
                    }
                    _ => {
                        if let Some((evs, ni, nb)) = self.events_at(i, end) {
                            out.extend(evs.into_iter().map(Node::Event));
                            binds.extend(nb);
                            i = ni;
                        } else {
                            i += 1;
                        }
                    }
                }
            } else if t.kind == TokKind::Ident {
                match t.text.as_str() {
                    "if" => {
                        let (n, ni) = self.if_chain(i, end, binds);
                        out.push(n);
                        i = ni;
                    }
                    "match" => {
                        let (n, ni) = self.match_node(i, end, binds);
                        out.push(n);
                        i = ni;
                    }
                    "loop" => {
                        if self.toks.get(i + 1).is_some_and(|t| t.is_punct('{')) {
                            let (body, ni) = self.block(i + 1);
                            out.push(Node::Loop(Box::new(body)));
                            i = ni;
                        } else {
                            i += 1;
                        }
                    }
                    "while" | "for" => {
                        let Some(open) = self.find_d0(i + 1, end, b'{') else {
                            self.ok = false;
                            i += 1;
                            continue;
                        };
                        let header = self.stmts(i + 1, open, binds);
                        let (body, ni) = self.block(open);
                        out.push(Node::Loop(Box::new(Node::Seq(vec![header, body]))));
                        i = ni;
                    }
                    "else" => {
                        // `let ... else { ... }`: the block runs conditionally
                        // (and must diverge); model as a branch so its early
                        // exit does not kill the fall-through path.
                        if self.toks.get(i + 1).is_some_and(|t| t.is_punct('{')) {
                            let (b, ni) = self.block(i + 1);
                            out.push(Node::Branch(vec![b, Node::Seq(Vec::new())]));
                            i = ni;
                        } else {
                            i += 1;
                        }
                    }
                    "return" => {
                        let semi = self.find_d0(i + 1, end, b';').unwrap_or(end);
                        let e = self.stmts(i + 1, semi, binds);
                        out.push(e);
                        out.push(Node::Return);
                        i = semi + 1;
                    }
                    "break" => {
                        out.push(Node::Break);
                        i = self.find_d0(i + 1, end, b';').map_or(end, |s| s + 1);
                    }
                    "continue" => {
                        out.push(Node::Continue);
                        i = self.find_d0(i + 1, end, b';').map_or(end, |s| s + 1);
                    }
                    "fn" => {
                        // Nested fn item: parsed as its own FnDef; skip here.
                        i = self.skip_fn_item(i, end);
                    }
                    _ => {
                        if let Some((evs, ni, nb)) = self.events_at(i, end) {
                            out.extend(evs.into_iter().map(Node::Event));
                            binds.extend(nb);
                            i = ni;
                        } else {
                            i += 1;
                        }
                    }
                }
            } else {
                i += 1;
            }
            if i <= before {
                i = before + 1;
            }
        }
        Node::Seq(out)
    }

    /// Parse the block opening at `open` (`{`); returns (scope, past-`}`).
    fn block(&mut self, open: usize) -> (Node, usize) {
        let close = matching_brace(self.toks, open);
        let mut binds = Vec::new();
        let inner = self.stmts(open + 1, close, &mut binds);
        (Node::Scope(Box::new(inner), binds), close + 1)
    }

    /// `if`/`else if`/`else` chain starting at the `if` keyword.
    fn if_chain(&mut self, i: usize, end: usize, binds: &mut Vec<String>) -> (Node, usize) {
        let Some(open) = self.find_d0(i + 1, end, b'{') else {
            self.ok = false;
            return (Node::Seq(Vec::new()), end);
        };
        let cond = self.stmts(i + 1, open, binds);
        let (then_n, mut ni) = self.block(open);
        let mut alts = vec![then_n];
        if ni < end && self.toks[ni].is_ident("else") {
            if self.toks.get(ni + 1).is_some_and(|t| t.is_ident("if")) {
                let (els, nj) = self.if_chain(ni + 1, end, binds);
                alts.push(els);
                ni = nj;
            } else if self.toks.get(ni + 1).is_some_and(|t| t.is_punct('{')) {
                let (els, nj) = self.block(ni + 1);
                alts.push(els);
                ni = nj;
            } else {
                alts.push(Node::Seq(Vec::new()));
                ni += 1;
            }
        } else {
            alts.push(Node::Seq(Vec::new()));
        }
        (Node::Seq(vec![cond, Node::Branch(alts)]), ni)
    }

    /// `match` expression starting at the `match` keyword.
    fn match_node(&mut self, i: usize, end: usize, binds: &mut Vec<String>) -> (Node, usize) {
        let Some(open) = self.find_d0(i + 1, end, b'{') else {
            self.ok = false;
            return (Node::Seq(Vec::new()), end);
        };
        let scrut = self.stmts(i + 1, open, binds);
        let close = matching_brace(self.toks, open);
        let mut arms = Vec::new();
        let mut j = open + 1;
        while j < close {
            let Some(arrow) = self.find_arrow(j, close) else {
                break;
            };
            let mut abinds = Vec::new();
            let pat = self.stmts(j, arrow, &mut abinds);
            let mut k = arrow + 2;
            let body;
            if k < close && self.toks[k].is_punct('{') {
                let (b, nk) = self.block(k);
                body = b;
                k = nk;
                if k < close && self.toks[k].is_punct(',') {
                    k += 1;
                }
            } else {
                let aend = self.find_d0(k, close, b',').unwrap_or(close);
                body = self.stmts(k, aend, &mut abinds);
                k = aend + 1;
            }
            arms.push(Node::Seq(vec![pat, Node::Scope(Box::new(body), abinds)]));
            j = k.max(j + 1);
        }
        if arms.is_empty() {
            arms.push(Node::Seq(Vec::new()));
        }
        (Node::Seq(vec![scrut, Node::Branch(arms)]), close + 1)
    }

    /// Skip a nested `fn` item (signature + body or `;`).
    fn skip_fn_item(&mut self, i: usize, end: usize) -> usize {
        let mut j = i + 2;
        let mut paren = 0i32;
        while j < end {
            let t = &self.toks[j];
            if t.is_punct('(') || t.is_punct('[') {
                paren += 1;
            } else if t.is_punct(')') || t.is_punct(']') {
                paren -= 1;
            } else if t.is_punct(';') && paren == 0 {
                return j + 1;
            } else if t.is_punct('{') && paren == 0 {
                return matching_brace(self.toks, j) + 1;
            }
            j += 1;
        }
        end
    }

    /// Find punct `target` at paren/bracket/brace depth 0 within `[i, end)`.
    fn find_d0(&self, mut i: usize, end: usize, target: u8) -> Option<usize> {
        let mut paren = 0i32;
        let mut brack = 0i32;
        let mut brace = 0i32;
        while i < end {
            let t = &self.toks[i];
            if t.kind == TokKind::Punct {
                let c = t.text.as_bytes().first().copied().unwrap_or(b' ');
                if paren == 0 && brack == 0 && brace == 0 && c == target {
                    return Some(i);
                }
                match c {
                    b'(' => paren += 1,
                    b')' => paren -= 1,
                    b'[' => brack += 1,
                    b']' => brack -= 1,
                    b'{' => brace += 1,
                    b'}' => brace -= 1,
                    _ => {}
                }
                if paren < 0 || brack < 0 || brace < 0 {
                    return None;
                }
            }
            i += 1;
        }
        None
    }

    /// Find a depth-0 `=>` within `[i, end)`; returns the `=` index.
    fn find_arrow(&self, mut i: usize, end: usize) -> Option<usize> {
        let mut paren = 0i32;
        let mut brack = 0i32;
        let mut brace = 0i32;
        while i + 1 < end {
            let t = &self.toks[i];
            if t.kind == TokKind::Punct {
                let c = t.text.as_bytes().first().copied().unwrap_or(b' ');
                match c {
                    b'(' => paren += 1,
                    b')' => paren -= 1,
                    b'[' => brack += 1,
                    b']' => brack -= 1,
                    b'{' => brace += 1,
                    b'}' => brace -= 1,
                    b'=' if paren == 0 && brack == 0 && brace == 0 => {
                        let prev_eq = i > 0 && {
                            let p = &self.toks[i - 1];
                            p.is_punct('=') || p.is_punct('<') || p.is_punct('>') || p.is_punct('!')
                        };
                        if !prev_eq && self.toks[i + 1].is_punct('>') {
                            return Some(i);
                        }
                    }
                    _ => {}
                }
                if paren < 0 || brack < 0 || brace < 0 {
                    return None;
                }
            }
            i += 1;
        }
        None
    }

    /// Try to read one or more events starting at token `i`.
    /// Returns (events, next index, newly declared bindings).
    #[allow(clippy::type_complexity)]
    fn events_at(&mut self, i: usize, end: usize) -> Option<(Vec<Event>, usize, Vec<String>)> {
        let t = &self.toks[i];
        let line = t.line;

        // `drop(v)` — explicit guard release.
        if t.is_ident("drop")
            && self.toks.get(i + 1).is_some_and(|t| t.is_punct('('))
            && self.toks.get(i + 3).is_some_and(|t| t.is_punct(')'))
        {
            if let Some(v) = self.toks.get(i + 2).filter(|t| t.kind == TokKind::Ident) {
                return Some((
                    vec![Event::DropVar {
                        var: v.text.clone(),
                        line,
                        implicit: false,
                    }],
                    i + 4,
                    Vec::new(),
                ));
            }
        }

        // `forget(v)` / `mem::forget(v)` — guard leak.
        if t.is_ident("forget") && self.toks.get(i + 1).is_some_and(|t| t.is_punct('(')) {
            let var = self
                .toks
                .get(i + 2)
                .filter(|t| t.kind == TokKind::Ident)
                .map(|t| t.text.clone());
            return Some((vec![Event::Forget { var, line }], i + 2, Vec::new()));
        }

        // Method calls: `.name(`.
        if t.is_punct('.') {
            let name = self.toks.get(i + 1)?;
            if name.kind != TokKind::Ident || !self.toks.get(i + 2).is_some_and(|t| t.is_punct('('))
            {
                return None;
            }
            let open = i + 2;
            let empty = self.toks.get(open + 1).is_some_and(|t| t.is_punct(')'));
            let recv = (i > 0)
                .then(|| &self.toks[i - 1])
                .filter(|t| t.kind == TokKind::Ident)
                .map(|t| t.text.clone());
            let nm = name.text.as_str();
            let acquire = |mode: Mode, blocking: bool, p: &mut Parser<'a>| {
                let (var, decl) = p.stmt_binding(i);
                let binds = if decl {
                    var.clone().into_iter().collect()
                } else {
                    Vec::new()
                };
                (
                    vec![Event::Acquire {
                        mode,
                        blocking,
                        recv: recv.clone(),
                        var,
                        line,
                    }],
                    open + 2,
                    binds,
                )
            };
            match nm {
                "s" if empty => return Some(acquire(Mode::S, true, self)),
                "u" if empty => return Some(acquire(Mode::U, true, self)),
                "x" if empty => return Some(acquire(Mode::X, true, self)),
                "try_s" if empty => return Some(acquire(Mode::S, false, self)),
                "try_u" if empty => return Some(acquire(Mode::U, false, self)),
                "try_x" if empty => return Some(acquire(Mode::X, false, self)),
                "promote" => {
                    let (var, decl) = self.stmt_binding(i);
                    let binds = if decl {
                        var.clone().into_iter().collect()
                    } else {
                        Vec::new()
                    };
                    return Some((vec![Event::Promote { recv, var, line }], open + 1, binds));
                }
                "lock_alloc" => {
                    let (var, decl) = self.stmt_binding(i);
                    let binds = if decl {
                        var.clone().into_iter().collect()
                    } else {
                        Vec::new()
                    };
                    return Some((
                        vec![
                            Event::BlockingLock {
                                what: nm.to_string(),
                                line,
                            },
                            Event::Acquire {
                                mode: Mode::X,
                                blocking: true,
                                recv: Some("alloc".to_string()),
                                var,
                                line,
                            },
                        ],
                        open + 1,
                        binds,
                    ));
                }
                "append" => {
                    return Some((vec![Event::Append { line }], open + 1, Vec::new()));
                }
                "mark_dirty" | "mark_dirty_at" | "data_mut" => {
                    return Some((
                        vec![Event::Dirty {
                            method: nm.to_string(),
                            line,
                        }],
                        open + 1,
                        Vec::new(),
                    ));
                }
                "lock" | "acquire" if !empty => {
                    return Some((
                        vec![Event::BlockingLock {
                            what: nm.to_string(),
                            line,
                        }],
                        open + 1,
                        Vec::new(),
                    ));
                }
                "wait" | "wait_timeout" | "wait_durable" | "force" | "force_to" => {
                    return Some((
                        vec![Event::Wait {
                            what: nm.to_string(),
                            line,
                        }],
                        open + 1,
                        Vec::new(),
                    ));
                }
                "join" | "recv" if empty => {
                    return Some((
                        vec![Event::Wait {
                            what: nm.to_string(),
                            line,
                        }],
                        open + 1,
                        Vec::new(),
                    ));
                }
                _ => {
                    let (args, moved) = self.call_args(open);
                    return Some((
                        vec![Event::Call {
                            name: nm.to_string(),
                            args,
                            method: true,
                            moved,
                            line,
                        }],
                        open + 1,
                        Vec::new(),
                    ));
                }
            }
        }

        if t.kind != TokKind::Ident {
            return None;
        }

        // `dst = src;` — a plain move between bindings.
        if !KEYWORDS.contains(&t.text.as_str())
            && self.toks.get(i + 1).is_some_and(|t| t.is_punct('='))
            && self
                .toks
                .get(i + 2)
                .is_some_and(|t| t.kind == TokKind::Ident && !KEYWORDS.contains(&t.text.as_str()))
            && self.toks.get(i + 3).is_some_and(|t| t.is_punct(';'))
        {
            let prev_op = i > 0 && {
                let p = &self.toks[i - 1];
                p.kind == TokKind::Punct
                    && matches!(
                        p.text.as_bytes().first().copied().unwrap_or(b' '),
                        b'=' | b'<'
                            | b'>'
                            | b'!'
                            | b'+'
                            | b'-'
                            | b'*'
                            | b'/'
                            | b'%'
                            | b'&'
                            | b'|'
                            | b'^'
                            | b'.'
                    )
            };
            if !prev_op {
                let decl = i > 0
                    && (self.toks[i - 1].is_ident("let")
                        || (i > 1
                            && self.toks[i - 1].is_ident("mut")
                            && self.toks[i - 2].is_ident("let")));
                let dst = t.text.clone();
                let binds = if decl { vec![dst.clone()] } else { Vec::new() };
                return Some((
                    vec![Event::AssignVar {
                        dst,
                        src: self.toks[i + 2].text.clone(),
                        line,
                    }],
                    i + 4,
                    binds,
                ));
            }
        }

        // Free function calls: `name(...)`, not a macro, not a definition.
        if !KEYWORDS.contains(&t.text.as_str())
            && self.toks.get(i + 1).is_some_and(|t| t.is_punct('('))
            && !(i > 0 && (self.toks[i - 1].is_punct('.') || self.toks[i - 1].is_ident("fn")))
        {
            if t.text == "sleep" {
                return Some((
                    vec![Event::Wait {
                        what: "sleep".to_string(),
                        line,
                    }],
                    i + 2,
                    Vec::new(),
                ));
            }
            let (args, moved) = self.call_args(i + 1);
            return Some((
                vec![Event::Call {
                    name: t.text.clone(),
                    args,
                    method: false,
                    moved,
                    line,
                }],
                i + 2,
                Vec::new(),
            ));
        }
        let _ = end;
        None
    }

    /// Count call arguments in the paren group at `open` and collect plain
    /// by-value identifier arguments (potential guard moves). Closure
    /// parameter pipes suspend comma counting.
    fn call_args(&self, open: usize) -> (usize, Vec<String>) {
        let mut depth = 0i32;
        let mut commas = 0usize;
        let mut any = false;
        let mut pipe = false;
        let mut moved = Vec::new();
        let mut i = open;
        while i < self.toks.len() {
            let t = &self.toks[i];
            if t.kind == TokKind::Punct {
                match t.text.as_bytes().first().copied().unwrap_or(b' ') {
                    b'(' | b'[' | b'{' => depth += 1,
                    b')' | b']' | b'}' => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    b'|' if depth == 1 => pipe = !pipe,
                    b',' if depth == 1 && !pipe => commas += 1,
                    _ => {}
                }
            } else {
                if depth >= 1 {
                    any = true;
                }
                if t.kind == TokKind::Ident && depth == 1 {
                    // A bare identifier argument (delimiters on both sides,
                    // no `&` borrow) moves its value into the call.
                    let prev_delim =
                        self.toks[i - 1].is_punct('(') || self.toks[i - 1].is_punct(',');
                    let next_delim = self
                        .toks
                        .get(i + 1)
                        .is_some_and(|n| n.is_punct(')') || n.is_punct(','));
                    if prev_delim && next_delim {
                        moved.push(t.text.clone());
                    }
                }
            }
            i += 1;
        }
        let args = if any || commas > 0 { commas + 1 } else { 0 };
        (args, moved)
    }

    /// The binding a guard-producing expression at token `i` (a `.` of a
    /// method call) is assigned to, plus whether the statement is a `let`
    /// declaration. Handles `let [mut] NAME = ...`, `NAME = ...`, and the
    /// pattern forms `Some(NAME)` / `Ok(NAME)` (from `if let` / `let-else`
    /// / `while let`).
    fn stmt_binding(&self, i: usize) -> (Option<String>, bool) {
        // Walk back to the statement start, skipping balanced paren groups.
        let mut j = i;
        while j > 0 {
            let t = &self.toks[j - 1];
            if t.is_punct(')') {
                // Skip the whole group.
                let mut d = 0i32;
                let mut k = j - 1;
                loop {
                    let u = &self.toks[k];
                    if u.is_punct(')') {
                        d += 1;
                    } else if u.is_punct('(') {
                        d -= 1;
                        if d == 0 {
                            break;
                        }
                    }
                    if k == 0 {
                        break;
                    }
                    k -= 1;
                }
                j = k;
                continue;
            }
            if t.is_punct(';')
                || t.is_punct('{')
                || t.is_punct('}')
                || t.is_punct(',')
                || t.is_punct('(')
            {
                break;
            }
            j -= 1;
        }
        // Find the first plain `=` in [j, i), skipping paren groups forward.
        let mut k = j;
        let mut eq = None;
        while k < i {
            let t = &self.toks[k];
            if t.is_punct('(') {
                let mut d = 0i32;
                while k < i {
                    if self.toks[k].is_punct('(') {
                        d += 1;
                    } else if self.toks[k].is_punct(')') {
                        d -= 1;
                        if d == 0 {
                            break;
                        }
                    }
                    k += 1;
                }
                k += 1;
                continue;
            }
            if t.is_punct('=') {
                let prev_op = k > 0 && {
                    let p = &self.toks[k - 1];
                    p.is_punct('=') || p.is_punct('<') || p.is_punct('>') || p.is_punct('!')
                };
                let next_eq = self.toks.get(k + 1).is_some_and(|n| n.is_punct('='));
                if !prev_op && !next_eq {
                    eq = Some(k);
                    break;
                }
            }
            k += 1;
        }
        let Some(e) = eq else {
            return (None, false);
        };
        let decl = self.toks[j..e].iter().any(|t| t.is_ident("let"));
        // `NAME =`
        if e > 0 && self.toks[e - 1].kind == TokKind::Ident {
            return (Some(self.toks[e - 1].text.clone()), decl);
        }
        // `Some(NAME) =` / `Ok(NAME) =`
        if e >= 4
            && self.toks[e - 1].is_punct(')')
            && self.toks[e - 2].kind == TokKind::Ident
            && self.toks[e - 3].is_punct('(')
            && self.toks[e - 4].kind == TokKind::Ident
        {
            return (Some(self.toks[e - 2].text.clone()), decl);
        }
        (None, decl)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::FileCx;

    fn parse(src: &str) -> FileAst {
        parse_file(&FileCx::new("crates/core/src/fake.rs", src))
    }

    fn events(n: &Node, out: &mut Vec<Event>) {
        match n {
            Node::Seq(v) | Node::Branch(v) => v.iter().for_each(|n| events(n, out)),
            Node::Event(e) => out.push(e.clone()),
            Node::Loop(b) => events(b, out),
            Node::Scope(b, _) => events(b, out),
            _ => {}
        }
    }

    fn all_events(src: &str) -> Vec<Event> {
        let ast = parse(src);
        let mut out = Vec::new();
        for f in &ast.fns {
            events(&f.body, &mut out);
        }
        out
    }

    #[test]
    fn signature_params_and_self() {
        let ast = parse("fn f(&self, a: u32, b: &str) -> u32 { 0 }\nfn g(x: Vec<u8>) {}");
        assert_eq!(ast.fns[0].params, 2);
        assert!(ast.fns[0].has_self);
        assert_eq!(ast.fns[1].params, 1);
        assert!(!ast.fns[1].has_self);
    }

    #[test]
    fn acquire_binding_and_mode() {
        let evs = all_events("fn f(&self, pin: &Pin) { let mut g = pin.x(); drop(g); }");
        assert!(matches!(
            &evs[0],
            Event::Acquire { mode: Mode::X, blocking: true, recv: Some(r), var: Some(v), .. }
                if r == "pin" && v == "g"
        ));
        assert!(matches!(&evs[1], Event::DropVar { var, implicit: false, .. } if var == "g"));
    }

    #[test]
    fn try_acquire_via_let_some() {
        let evs =
            all_events("fn f(&self, pin: &Pin) { if let Some(g) = pin.try_x() { use_it(g); } }");
        assert!(evs.iter().any(|e| matches!(
            e,
            Event::Acquire { blocking: false, var: Some(v), .. } if v == "g"
        )));
    }

    #[test]
    fn question_mark_is_try_exit() {
        let ast = parse("fn f(&self) -> R<()> { self.wal.append(r)?; Ok(()) }");
        let mut found = false;
        fn walk(n: &Node, found: &mut bool) {
            match n {
                Node::TryExit => *found = true,
                Node::Seq(v) | Node::Branch(v) => v.iter().for_each(|n| walk(n, found)),
                Node::Loop(b) | Node::Scope(b, _) => walk(b, found),
                _ => {}
            }
        }
        walk(&ast.fns[0].body, &mut found);
        assert!(found);
    }

    #[test]
    fn branches_and_loops_are_structured() {
        let src = "fn f(&self, c: bool) { if c { a.append(r); } else { b.other(); } \
                   for e in list { e.step(); } match c { true => one(), false => {} } }";
        let ast = parse(src);
        let mut branches = 0;
        let mut loops = 0;
        fn walk(n: &Node, b: &mut i32, l: &mut i32) {
            match n {
                Node::Branch(v) => {
                    *b += 1;
                    v.iter().for_each(|n| walk(n, b, l));
                }
                Node::Loop(x) => {
                    *l += 1;
                    walk(x, b, l);
                }
                Node::Seq(v) => v.iter().for_each(|n| walk(n, b, l)),
                Node::Scope(x, _) => walk(x, b, l),
                _ => {}
            }
        }
        walk(&ast.fns[0].body, &mut branches, &mut loops);
        assert_eq!(branches, 2);
        assert_eq!(loops, 1);
    }

    #[test]
    fn blocking_lock_requires_args() {
        let evs = all_events("fn f(&self, t: &Txn) { t.lock(&n, m); self.q.lock(); }");
        let blocking: Vec<_> = evs
            .iter()
            .filter(|e| matches!(e, Event::BlockingLock { .. }))
            .collect();
        assert_eq!(blocking.len(), 1);
    }

    #[test]
    fn call_args_and_moves() {
        let evs = all_events("fn f(&self, g: G) { self.use_guard(g, &other, x.y()); }");
        let call = evs
            .iter()
            .find(|e| matches!(e, Event::Call { name, .. } if name == "use_guard"))
            .unwrap();
        if let Event::Call { args, moved, .. } = call {
            assert_eq!(*args, 3);
            assert_eq!(moved, &vec!["g".to_string()]);
        }
    }

    #[test]
    fn let_else_keeps_fallthrough() {
        // The diverging else-block must not make the rest of the fn dead.
        let evs = all_events(
            "fn f(&self, pin: &Pin) { let Some(g) = pin.try_x() else { return }; g.touch(); }",
        );
        assert!(evs
            .iter()
            .any(|e| matches!(e, Event::Call { name, .. } if name == "touch")));
    }
}
