//! pitree-flow: path-sensitive dataflow rules over per-function CFGs and
//! the whole-workspace call graph.
//!
//! Four analyses run here, each a forward dataflow fixpoint over
//! [`crate::cfg::Cfg`] blocks followed by a single reporting pass:
//!
//! 1. **Latch-acquisition order graph** (paper §4.1) — the set of held
//!    latch *classes* is tracked through every path; each acquisition made
//!    while something is held adds an edge `held-class → new-class`. The
//!    graph is emitted as a DOT artifact, and a cycle among blocking
//!    (non-`try_`) edges in the quotient graph (page-role classes
//!    collapsed, since ordering *within* the page family is the runtime
//!    search-order argument) is a hard failure: deadlock freedom as a
//!    checked theorem.
//! 2. **Guard lifetime** — a latch guard leaked via `forget`, held across
//!    a blocking wait on any path, or dropped twice on some path.
//! 3. **Log-before-dirty** (paper §4.3.1) — every path to a page-dirtying
//!    call must pass a WAL append first, in the same function or in a
//!    caller (interprocedural, via always-appends call-graph summaries).
//! 4. **Interprocedural no-wait** (paper §4.2.2) — a blocking lock
//!    acquisition reachable through any call chain from an SMO
//!    completion/post/consolidate entry point.
//!
//! The `sanction` callback consults `// pitree-lint: allow(...)`
//! directives: it returns `true` when a would-be finding at
//! `(file, line)` is suppressed, marking the allow used.

use crate::callgraph::CallGraph;
use crate::cfg::{lower, Cfg};
use crate::parse::{Event, FileAst, FnDef};
use crate::rules::{Finding, RuleId};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Files whose internals implement the latch/buffer machinery itself;
/// their acquisitions are the mechanism, not uses of the discipline.
const EXEMPT: [&str; 3] = [
    "crates/pagestore/src/latch.rs",
    "crates/pagestore/src/buffer.rs",
    "crates/pagestore/src/sync.rs",
];

/// SMO completion-path entry files for the interprocedural No-Wait rule.
/// Sites *inside* these files are the token rule's responsibility; flow
/// adds the call chains that leave them.
const NO_WAIT_ENTRIES: [&str; 3] = [
    "crates/core/src/completion.rs",
    "crates/core/src/post.rs",
    "crates/core/src/consolidate.rs",
];

/// Suppression oracle: `(file index, line, rule)` → suppressed?
pub type Sanction<'a> = dyn FnMut(usize, u32, RuleId) -> bool + 'a;

struct FlowFn<'a> {
    file: usize,
    def: &'a FnDef,
    cfg: Cfg,
}

/// Run all flow rules over the parsed workspace. Returns the findings
/// (suppressions already applied via `sanction`) and the latch-order
/// graph in DOT form.
pub fn analyze(asts: &[FileAst], sanction: &mut Sanction<'_>) -> (Vec<Finding>, String) {
    let mut fns: Vec<FlowFn<'_>> = Vec::new();
    for (fi, ast) in asts.iter().enumerate() {
        if !ast.parsed || EXEMPT.contains(&ast.path.as_str()) {
            continue;
        }
        for def in &ast.fns {
            if def.is_test {
                continue;
            }
            fns.push(FlowFn {
                file: fi,
                def,
                cfg: lower(&def.body),
            });
        }
    }
    let cg = CallGraph::new(
        &fns.iter()
            .map(|f| (f.def.name.clone(), f.def.params, f.def.has_self))
            .collect::<Vec<_>>(),
    );

    let mut findings = Vec::new();
    let dot = latch_order_graph(asts, &fns, &cg, sanction, &mut findings);
    guard_lifetime(asts, &fns, sanction, &mut findings);
    log_before_dirty(asts, &fns, &cg, sanction, &mut findings);
    no_wait_reach(asts, &fns, &cg, sanction, &mut findings);
    (findings, dot)
}

// ---- dataflow scaffolding -------------------------------------------------

/// Forward worklist fixpoint: per-block *in*-states. `None` = unreachable.
fn fixpoint<S: Clone + PartialEq>(
    cfg: &Cfg,
    init: S,
    join: impl Fn(&S, &S) -> S,
    step: impl Fn(&S, &Event) -> S,
) -> Vec<Option<S>> {
    let mut input: Vec<Option<S>> = vec![None; cfg.blocks.len()];
    input[cfg.entry] = Some(init);
    let mut work = vec![cfg.entry];
    let mut guard = 0usize;
    while let Some(b) = work.pop() {
        guard += 1;
        if guard > 100_000 {
            break; // non-monotone join bug containment; never expected
        }
        let Some(mut s) = input[b].clone() else {
            continue;
        };
        for e in &cfg.blocks[b].events {
            s = step(&s, e);
        }
        for &succ in &cfg.blocks[b].succs {
            let merged = match &input[succ] {
                None => s.clone(),
                Some(old) => join(old, &s),
            };
            if input[succ].as_ref() != Some(&merged) {
                input[succ] = Some(merged);
                work.push(succ);
            }
        }
    }
    input
}

/// Replay each reachable block once from its in-state, calling `visit` on
/// every (state-before, event) pair. Findings are emitted here, exactly
/// once per program point.
fn visit_events<S: Clone>(
    cfg: &Cfg,
    input: &[Option<S>],
    step: impl Fn(&S, &Event) -> S,
    mut visit: impl FnMut(&S, &Event),
) {
    for (b, blk) in cfg.blocks.iter().enumerate() {
        let Some(s0) = &input[b] else {
            continue;
        };
        let mut s = s0.clone();
        for e in &blk.events {
            visit(&s, e);
            s = step(&s, e);
        }
    }
}

// ---- rule 1: latch-acquisition order graph (§4.1) -------------------------

/// Latch class of an acquisition receiver, from the workspace's naming
/// conventions (guard/pin variables name their role in the SMO).
fn latch_class(recv: Option<&str>) -> &'static str {
    let Some(r) = recv else { return "node" };
    if r.contains("alloc") {
        "alloc"
    } else if r == "smo" {
        "smo"
    } else if r.starts_with("bm") {
        "spacemap"
    } else if r.starts_with("meta") {
        "meta"
    } else if r == "n_pin" {
        "contained"
    } else if r.starts_with("hist") || matches!(r, "hp" | "hpin" | "hg") {
        "history"
    } else if r.starts_with("new") || matches!(r, "np" | "n1_pin" | "n2_pin" | "ng") {
        "newpage"
    } else if r.starts_with("parent") || matches!(r, "pg" | "u") {
        "parent"
    } else if r.starts_with("child") || matches!(r, "cpin" | "cp" | "c_pin" | "cg") {
        "child"
    } else if r.starts_with("sib") || r.starts_with("next") || r == "sp" {
        "sibling"
    } else if r.starts_with("root") {
        "root"
    } else {
        "node"
    }
}

/// Quotient for the cycle check: the page-role classes collapse into one
/// node, because ordering among tree pages is the *runtime* search-order
/// argument (checked by the latch rank assertions), not a static total
/// order between roles.
fn quot(class: &str) -> &'static str {
    match class {
        "alloc" => "alloc",
        "spacemap" => "spacemap",
        "smo" => "smo",
        _ => "page",
    }
}

/// An edge participates in the static cycle check unless both endpoints
/// are tree pages (the quotient's internal structure).
fn cycle_relevant(from: &str, to: &str) -> bool {
    !(quot(from) == "page" && quot(to) == "page")
}

/// Held latch guards: (variable, class).
type Held = BTreeSet<(String, String)>;

fn held_step(s: &Held, e: &Event) -> Held {
    let mut s = s.clone();
    match e {
        Event::Acquire {
            var: Some(v), recv, ..
        } => {
            s.retain(|(x, _)| x != v);
            s.insert((v.clone(), latch_class(recv.as_deref()).to_string()));
        }
        Event::Promote { recv, var, .. } => {
            let cls = recv
                .as_deref()
                .and_then(|r| s.iter().find(|(x, _)| x == r).map(|(_, c)| c.clone()))
                .unwrap_or_else(|| "node".to_string());
            if let Some(r) = recv {
                s.retain(|(x, _)| x != r);
            }
            if let Some(v) = var {
                s.retain(|(x, _)| x != v);
                s.insert((v.clone(), cls));
            }
        }
        Event::DropVar { var, .. } => s.retain(|(x, _)| x != var),
        Event::AssignVar { dst, src, .. } => {
            let src_cls = s.iter().find(|(x, _)| x == src).map(|(_, c)| c.clone());
            s.retain(|(x, _)| x != dst && x != src);
            if let Some(c) = src_cls {
                s.insert((dst.clone(), c));
            }
        }
        Event::Call { moved, .. } => s.retain(|(x, _)| !moved.contains(x)),
        _ => {}
    }
    s
}

#[derive(Debug)]
struct EdgeInfo {
    count: usize,
    file: usize,
    line: u32,
    /// All occurrences carry an `allow(latch-cycle)`: drawn gray, out of
    /// the cycle check.
    exempt: bool,
}

fn latch_order_graph(
    asts: &[FileAst],
    fns: &[FlowFn<'_>],
    cg: &CallGraph,
    sanction: &mut Sanction<'_>,
    findings: &mut Vec<Finding>,
) -> String {
    // Interprocedural summaries: classes a function blocking-acquires,
    // directly or through any callee (union fixpoint).
    let mut acq: Vec<BTreeSet<String>> = fns
        .iter()
        .map(|f| {
            let mut set = BTreeSet::new();
            for blk in &f.cfg.blocks {
                for e in &blk.events {
                    if let Event::Acquire {
                        blocking: true,
                        recv,
                        ..
                    } = e
                    {
                        set.insert(latch_class(recv.as_deref()).to_string());
                    }
                }
            }
            set
        })
        .collect();
    // Summaries flow only through *unambiguous* call resolutions: with
    // name/arity matching, a popular name (`apply`, `insert`) resolves to
    // many unrelated functions and would union every class into every
    // call site, saturating the graph into uselessness. Dropping ambiguous
    // edges under-approximates; the runtime latch-rank checker still
    // covers what the static graph cannot see.
    let callees: Vec<Vec<usize>> = fns
        .iter()
        .map(|f| {
            let mut out = Vec::new();
            for blk in &f.cfg.blocks {
                for e in &blk.events {
                    if let Event::Call {
                        name, args, method, ..
                    } = e
                    {
                        let cands = cg.resolve(name, *args, *method);
                        if let [one] = cands[..] {
                            out.push(one);
                        }
                    }
                }
            }
            out
        })
        .collect();
    loop {
        let mut changed = false;
        for i in 0..fns.len() {
            for &c in &callees[i] {
                if c == i {
                    continue;
                }
                let extra: Vec<String> = acq[c].difference(&acq[i]).cloned().collect();
                if !extra.is_empty() {
                    acq[i].extend(extra);
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }

    // Collect edges: (from-class, to-class, blocking) → info.
    let mut edges: BTreeMap<(String, String, bool), EdgeInfo> = BTreeMap::new();
    for f in fns {
        let input = fixpoint(
            &f.cfg,
            Held::new(),
            |a, b| a.union(b).cloned().collect(),
            held_step,
        );
        visit_events(&f.cfg, &input, held_step, |s, e| {
            let mut record = |to: &str, blocking: bool, line: u32| {
                for (_, from) in s.iter() {
                    let key = (from.clone(), to.to_string(), blocking);
                    let relevant = blocking && cycle_relevant(from, to);
                    let ok = relevant && sanction(f.file, line, RuleId::LatchCycle);
                    let info = edges.entry(key).or_insert(EdgeInfo {
                        count: 0,
                        file: f.file,
                        line,
                        exempt: true,
                    });
                    info.count += 1;
                    if relevant {
                        info.exempt &= ok;
                    }
                }
            };
            match e {
                Event::Acquire {
                    recv,
                    blocking,
                    line,
                    ..
                } => record(latch_class(recv.as_deref()), *blocking, *line),
                Event::Call {
                    name,
                    args,
                    method,
                    line,
                    ..
                } if !s.is_empty() => {
                    // Same unambiguous-resolution restriction as the
                    // summary fixpoint above.
                    if let [c] = cg.resolve(name, *args, *method)[..] {
                        for cls in acq[c].clone() {
                            record(&cls, true, *line);
                        }
                    }
                }
                _ => {}
            }
        });
    }

    // Quotient cycle check over blocking, non-exempt, cycle-relevant edges.
    let mut q: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    let mut site: BTreeMap<(&str, &str), (usize, u32)> = BTreeMap::new();
    for ((from, to, blocking), info) in &edges {
        if !*blocking || info.exempt || !cycle_relevant(from, to) {
            continue;
        }
        let (qf, qt) = (quot(from), quot(to));
        q.entry(qf).or_default().insert(qt);
        site.entry((qf, qt)).or_insert((info.file, info.line));
    }
    let cycle = find_cycle(&q);
    if let Some(path) = &cycle {
        let (fi, line) = path
            .windows(2)
            .find_map(|w| site.get(&(w[0], w[1])).copied())
            .unwrap_or((0, 0));
        findings.push(Finding {
            path: asts.get(fi).map(|a| a.path.clone()).unwrap_or_default(),
            line,
            rule: RuleId::LatchCycle,
            msg: format!(
                "latch-acquisition order graph has a cycle: {}; a global \
                 acquisition order is what makes latching deadlock-free \
                 (paper 4.1) — see the DOT artifact",
                path.join(" -> ")
            ),
        });
    }

    // DOT artifact.
    let mut dot = String::new();
    dot.push_str("// pitree-flow latch-acquisition order graph (paper 4.1)\n");
    dot.push_str(&format!("// acyclic: {}\n", cycle.is_none()));
    dot.push_str("digraph latch_order {\n  rankdir=LR;\n");
    for ((from, to, blocking), info) in &edges {
        let path = asts.get(info.file).map(|a| a.path.as_str()).unwrap_or("?");
        let mut attrs = vec![format!("label=\"{}x {}:{}\"", info.count, path, info.line)];
        if !*blocking {
            attrs.push("style=dashed".to_string());
        } else if info.exempt && cycle_relevant(from, to) {
            attrs.push("color=gray".to_string());
        }
        dot.push_str(&format!(
            "  \"{from}\" -> \"{to}\" [{}];\n",
            attrs.join(", ")
        ));
    }
    dot.push_str("}\n");
    dot
}

/// DFS cycle search; returns a closed node path `a -> ... -> a` if found.
fn find_cycle<'a>(g: &BTreeMap<&'a str, BTreeSet<&'a str>>) -> Option<Vec<&'a str>> {
    let mut color: BTreeMap<&str, u8> = BTreeMap::new(); // 0 white 1 gray 2 black
    let mut stack: Vec<&str> = Vec::new();
    fn dfs<'a>(
        n: &'a str,
        g: &BTreeMap<&'a str, BTreeSet<&'a str>>,
        color: &mut BTreeMap<&'a str, u8>,
        stack: &mut Vec<&'a str>,
    ) -> Option<Vec<&'a str>> {
        color.insert(n, 1);
        stack.push(n);
        if let Some(succs) = g.get(n) {
            for &m in succs {
                match color.get(m).copied().unwrap_or(0) {
                    0 => {
                        if let Some(c) = dfs(m, g, color, stack) {
                            return Some(c);
                        }
                    }
                    1 => {
                        let start = stack.iter().position(|&x| x == m).unwrap_or(0);
                        let mut path: Vec<&str> = stack[start..].to_vec();
                        path.push(m);
                        return Some(path);
                    }
                    _ => {}
                }
            }
        }
        stack.pop();
        color.insert(n, 2);
        None
    }
    for &n in g.keys() {
        if color.get(n).copied().unwrap_or(0) == 0 {
            if let Some(c) = dfs(n, g, &mut color, &mut stack) {
                return Some(c);
            }
        }
    }
    None
}

// ---- rule 2: guard lifetime -----------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Liveness {
    /// Held on every path here.
    Live,
    /// Released on every path here.
    Dropped,
    /// Held on some path, released on another.
    Mixed,
}

type Guards = BTreeMap<String, (Liveness, u32)>;

fn guard_step(s: &Guards, e: &Event) -> Guards {
    let mut s = s.clone();
    match e {
        Event::Acquire {
            var: Some(v), line, ..
        } => {
            s.insert(v.clone(), (Liveness::Live, *line));
        }
        Event::Promote { recv, var, line } => {
            if let Some(r) = recv {
                s.remove(r);
            }
            if let Some(v) = var {
                s.insert(v.clone(), (Liveness::Live, *line));
            }
        }
        Event::DropVar {
            var,
            implicit: true,
            ..
        } => {
            s.remove(var);
        }
        Event::DropVar { var, line, .. } if s.contains_key(var) => {
            s.insert(var.clone(), (Liveness::Dropped, *line));
        }
        Event::AssignVar { dst, src, .. } => {
            if let Some(st) = s.remove(src) {
                s.insert(dst.clone(), st);
            } else {
                s.remove(dst);
            }
        }
        Event::Forget { var: Some(v), .. } => {
            s.remove(v);
        }
        Event::Call { moved, .. } => {
            for m in moved {
                s.remove(m);
            }
        }
        _ => {}
    }
    s
}

fn guard_join(a: &Guards, b: &Guards) -> Guards {
    let mut out = Guards::new();
    for k in a.keys().chain(b.keys()) {
        if out.contains_key(k) {
            continue;
        }
        let v = match (a.get(k), b.get(k)) {
            (Some(&(x, lx)), Some(&(y, ly))) => {
                let st = if x == y { x } else { Liveness::Mixed };
                (st, lx.min(ly))
            }
            (Some(&(x, l)), None) | (None, Some(&(x, l))) => {
                // Absent on one side = never acquired there = not held.
                let st = if x == Liveness::Dropped {
                    Liveness::Dropped
                } else {
                    Liveness::Mixed
                };
                (st, l)
            }
            (None, None) => unreachable!(),
        };
        out.insert(k.clone(), v);
    }
    out
}

fn guard_lifetime(
    asts: &[FileAst],
    fns: &[FlowFn<'_>],
    sanction: &mut Sanction<'_>,
    findings: &mut Vec<Finding>,
) {
    let mut seen: BTreeSet<(usize, u32, String)> = BTreeSet::new();
    for f in fns {
        let input = fixpoint(&f.cfg, Guards::new(), guard_join, guard_step);
        visit_events(&f.cfg, &input, guard_step, |s, e| {
            let mut emit = |line: u32, msg: String, key: String| {
                if !seen.insert((f.file, line, key)) {
                    return;
                }
                if sanction(f.file, line, RuleId::GuardLifetime) {
                    return;
                }
                findings.push(Finding {
                    path: asts[f.file].path.clone(),
                    line,
                    rule: RuleId::GuardLifetime,
                    msg,
                });
            };
            match e {
                Event::DropVar {
                    var,
                    line,
                    implicit: false,
                } => {
                    if let Some(&(Liveness::Dropped, first)) = s.get(var) {
                        emit(
                            *line,
                            format!(
                                "guard `{var}` in `{}` is dropped twice (earlier release \
                                 at line {first}); a double release corrupts the latch \
                                 state machine",
                                f.def.name
                            ),
                            format!("dd:{var}"),
                        );
                    }
                }
                Event::Forget { var: Some(v), line }
                    if s.get(v).is_some_and(|&(st, _)| st != Liveness::Dropped) =>
                {
                    emit(
                        *line,
                        format!(
                            "latch guard `{v}` in `{}` is leaked via forget(...); \
                             the latch is never released and every later acquirer \
                             deadlocks",
                            f.def.name
                        ),
                        format!("leak:{v}"),
                    );
                }
                Event::Wait { what, line } => {
                    let held: Vec<&str> = s
                        .iter()
                        .filter(|(_, &(st, _))| st != Liveness::Dropped)
                        .map(|(k, _)| k.as_str())
                        .collect();
                    if !held.is_empty() {
                        emit(
                            *line,
                            format!(
                                "blocking wait `{what}(...)` in `{}` while latch guard(s) \
                                 `{}` may still be held on some path; release latches \
                                 before blocking (paper 4.2.2)",
                                f.def.name,
                                held.join("`, `")
                            ),
                            format!("wait:{what}"),
                        );
                    }
                }
                _ => {}
            }
        });
    }
}

// ---- rule 3: log-before-dirty as dataflow (§4.3.1) ------------------------

fn log_before_dirty(
    asts: &[FileAst],
    fns: &[FlowFn<'_>],
    cg: &CallGraph,
    sanction: &mut Sanction<'_>,
    findings: &mut Vec<Finding>,
) {
    // always_appends[f]: every path through f reaches an append before
    // returning. Increasing fixpoint, AND-join over paths.
    let mut always = vec![false; fns.len()];
    loop {
        let mut changed = false;
        for (i, f) in fns.iter().enumerate() {
            if always[i] {
                continue;
            }
            let input = fixpoint(
                &f.cfg,
                false,
                |a, b| *a && *b,
                |s, e| logged_step(*s, e, cg, &always),
            );
            let exit = input[f.cfg.exit].unwrap_or(false);
            if exit {
                always[i] = true;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // Phase A: per-function local facts under the final summaries.
    // local[f]: dirty sites not dominated by an append inside f.
    // unlogged[f]: call sites still unlogged, with their candidates.
    let mut local: Vec<Vec<(u32, String)>> = vec![Vec::new(); fns.len()];
    let mut unlogged: Vec<Vec<(u32, Vec<usize>)>> = vec![Vec::new(); fns.len()];
    let mut callers: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); fns.len()];
    for (i, f) in fns.iter().enumerate() {
        let input = fixpoint(
            &f.cfg,
            false,
            |a, b| *a && *b,
            |s, e| logged_step(*s, e, cg, &always),
        );
        visit_events(
            &f.cfg,
            &input,
            |s, e| logged_step(*s, e, cg, &always),
            |s, e| match e {
                Event::Dirty { method, line }
                    if !*s && !sanction(f.file, *line, RuleId::LogBeforeDirty) =>
                {
                    local[i].push((*line, method.clone()));
                }
                Event::Call {
                    name,
                    args,
                    method,
                    line,
                    ..
                } => {
                    let cands = cg.resolve(name, *args, *method);
                    for &c in &cands {
                        callers[c].insert(i);
                    }
                    if !*s && !cands.is_empty() {
                        unlogged[i].push((*line, cands));
                    }
                }
                _ => {}
            },
        );
    }

    // Phase B: req[f] = some path through f dirties without a dominating
    // append, locally or through an unlogged call chain.
    let mut req: Vec<bool> = local.iter().map(|l| !l.is_empty()).collect();
    loop {
        let mut changed = false;
        for i in 0..fns.len() {
            if req[i] {
                continue;
            }
            if unlogged[i]
                .iter()
                .any(|(_, cands)| cands.iter().any(|&c| req[c]))
            {
                req[i] = true;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // Phase C: report from root functions (no workspace callers): any
    // caller could still discharge the obligation, so only chains that
    // begin at an entry no one wraps are definite violations.
    let mut reported: BTreeSet<(usize, u32)> = BTreeSet::new();
    for (root, f) in fns.iter().enumerate() {
        if !req[root] || !callers[root].is_empty() {
            continue;
        }
        let _ = f;
        let mut stack = vec![(root, vec![fns[root].def.name.clone()])];
        let mut visited = BTreeSet::new();
        while let Some((i, chain)) = stack.pop() {
            if !visited.insert(i) {
                continue;
            }
            for (line, method) in &local[i] {
                if !reported.insert((fns[i].file, *line)) {
                    continue;
                }
                let via = if chain.len() > 1 {
                    format!(" (reached via `{}`)", chain.join("` -> `"))
                } else {
                    String::new()
                };
                findings.push(Finding {
                    path: asts[fns[i].file].path.clone(),
                    line: *line,
                    rule: RuleId::LogBeforeDirty,
                    msg: format!(
                        "`{}` calls `{method}` on a path with no earlier WAL append, \
                         in this function or any caller{via}; log before dirtying \
                         (paper 4.3.1)",
                        fns[i].def.name
                    ),
                });
            }
            for (_, cands) in &unlogged[i] {
                for &c in cands {
                    if req[c] && !visited.contains(&c) {
                        let mut chain2 = chain.clone();
                        chain2.push(fns[c].def.name.clone());
                        stack.push((c, chain2));
                    }
                }
            }
        }
    }
}

/// Transfer for the "a WAL append dominates this point" predicate.
fn logged_step(s: bool, e: &Event, cg: &CallGraph, always: &[bool]) -> bool {
    if s {
        return true;
    }
    match e {
        Event::Append { .. } => true,
        Event::Call {
            name, args, method, ..
        } => {
            let cands = cg.resolve(name, *args, *method);
            !cands.is_empty() && cands.iter().all(|&c| always[c])
        }
        _ => false,
    }
}

// ---- rule 4: interprocedural no-wait (§4.2.2) -----------------------------

fn no_wait_reach(
    asts: &[FileAst],
    fns: &[FlowFn<'_>],
    cg: &CallGraph,
    sanction: &mut Sanction<'_>,
    findings: &mut Vec<Finding>,
) {
    let is_entry_file = |fi: usize| NO_WAIT_ENTRIES.contains(&asts[fi].path.as_str());
    let in_core = |fi: usize| asts[fi].path.starts_with("crates/core/src/");

    // BFS from every entry function over in-core call edges.
    let mut parent: BTreeMap<usize, usize> = BTreeMap::new();
    let mut entry_of: BTreeMap<usize, usize> = BTreeMap::new();
    let mut queue: VecDeque<usize> = VecDeque::new();
    for (i, f) in fns.iter().enumerate() {
        if is_entry_file(f.file) {
            entry_of.insert(i, i);
            queue.push_back(i);
        }
    }
    while let Some(i) = queue.pop_front() {
        for blk in &fns[i].cfg.blocks {
            for e in &blk.events {
                if let Event::Call {
                    name, args, method, ..
                } = e
                {
                    for c in cg.resolve(name, *args, *method) {
                        if in_core(fns[c].file) && !entry_of.contains_key(&c) {
                            entry_of.insert(c, entry_of[&i]);
                            parent.insert(c, i);
                            queue.push_back(c);
                        }
                    }
                }
            }
        }
    }

    let mut reported: BTreeSet<(usize, u32)> = BTreeSet::new();
    for (&i, &entry) in &entry_of {
        let f = &fns[i];
        // Sites inside the entry files belong to the token rule.
        if is_entry_file(f.file) {
            continue;
        }
        for blk in &f.cfg.blocks {
            for e in &blk.events {
                let Event::BlockingLock { what, line } = e else {
                    continue;
                };
                if !reported.insert((f.file, *line)) {
                    continue;
                }
                if sanction(f.file, *line, RuleId::NoWait) {
                    continue;
                }
                // Reconstruct the call chain entry -> ... -> f.
                let mut chain = vec![f.def.name.as_str()];
                let mut cur = i;
                while let Some(&p) = parent.get(&cur) {
                    chain.push(fns[p].def.name.as_str());
                    cur = p;
                }
                chain.reverse();
                findings.push(Finding {
                    path: asts[f.file].path.clone(),
                    line: *line,
                    rule: RuleId::NoWait,
                    msg: format!(
                        "blocking `{what}(...)` reachable from SMO completion entry \
                         `{}` via `{}`; completion paths hold latches, so every lock \
                         probe on them must be conditional (paper 4.2.2)",
                        fns[entry].def.name,
                        chain.join("` -> `")
                    ),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::FileCx;
    use crate::parse::parse_file;

    fn run(files: &[(&str, &str)]) -> (Vec<Finding>, String) {
        let asts: Vec<FileAst> = files
            .iter()
            .map(|(p, s)| parse_file(&FileCx::new(p, s)))
            .collect();
        let mut never = |_: usize, _: u32, _: RuleId| false;
        analyze(&asts, &mut never)
    }

    #[test]
    fn inverted_order_is_a_cycle() {
        let (f, dot) = run(&[(
            "crates/core/src/fake.rs",
            "fn a(&self, pin: &Pin, store: &S) { let g = pin.x(); let a = store.space.lock_alloc(); }\n\
             fn b(&self, pin: &Pin, store: &S) { let a = store.space.lock_alloc(); let g = pin.x(); }",
        )]);
        assert!(f.iter().any(|x| x.rule == RuleId::LatchCycle), "{f:?}");
        assert!(dot.contains("// acyclic: false"));
    }

    #[test]
    fn stratified_order_is_acyclic() {
        let (f, dot) = run(&[(
            "crates/core/src/fake.rs",
            "fn a(&self, pin: &Pin, store: &S) { let g = pin.x(); let a = store.space.lock_alloc(); }",
        )]);
        assert!(!f.iter().any(|x| x.rule == RuleId::LatchCycle), "{f:?}");
        assert!(dot.contains("// acyclic: true"));
        assert!(dot.contains("\"node\" -> \"alloc\""));
    }

    #[test]
    fn wait_while_latched_fires() {
        let (f, _) = run(&[(
            "crates/core/src/fake.rs",
            "fn a(&self, pin: &Pin, wal: &W) { let g = pin.x(); wal.force(); drop(g); }",
        )]);
        assert!(f.iter().any(|x| x.rule == RuleId::GuardLifetime), "{f:?}");
    }

    #[test]
    fn drop_before_wait_is_quiet() {
        let (f, _) = run(&[(
            "crates/core/src/fake.rs",
            "fn a(&self, pin: &Pin, wal: &W) { let g = pin.x(); drop(g); wal.force(); }",
        )]);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn branch_conditional_append_fires_lbd() {
        // Token rule would see an append earlier in the token stream; only
        // the path-sensitive analysis sees the unlogged else-path.
        let (f, _) = run(&[(
            "crates/core/src/fake.rs",
            "fn a(&self, c: bool, wal: &W, pin: &P) { if c { wal.append(r); } pin.mark_dirty(); }",
        )]);
        assert!(f.iter().any(|x| x.rule == RuleId::LogBeforeDirty), "{f:?}");
    }

    #[test]
    fn interprocedural_append_discharges_lbd() {
        let (f, _) = run(&[(
            "crates/core/src/fake.rs",
            "fn apply(&self, pin: &P) { pin.mark_dirty(); }\n\
             fn run(&self, wal: &W, pin: &P) { wal.append(r); self.apply(pin); }",
        )]);
        assert!(!f.iter().any(|x| x.rule == RuleId::LogBeforeDirty), "{f:?}");
    }

    #[test]
    fn no_wait_chain_is_interprocedural() {
        let (f, _) = run(&[
            (
                "crates/core/src/completion.rs",
                "fn finish(&self, store: &S) { self.alloc_page(store); }",
            ),
            (
                "crates/core/src/split.rs",
                "fn alloc_page(&self, store: &S) { let a = store.space.lock_alloc(); }",
            ),
        ]);
        let hit = f.iter().find(|x| x.rule == RuleId::NoWait);
        assert!(hit.is_some(), "{f:?}");
        assert!(hit.unwrap().msg.contains("finish"), "{f:?}");
    }
}
