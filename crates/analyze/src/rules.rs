//! The Π-tree protocol rules. Each rule is a pure function over a
//! [`FileCx`]; scoping (which files a rule patrols) is part of the rule.
//!
//! These are *static approximations* of the paper's runtime disciplines: a
//! token-level analysis cannot prove latch order, but it can reject the
//! code shapes that violate it, on **every** path rather than only the
//! interleavings a test happens to execute. False positives are expected to
//! be rare and are silenced with `// pitree-lint: allow(rule-id) <reason>`,
//! which requires a reason and is itself audited (stale allows fail the
//! build).

use crate::context::FileCx;
use crate::lexer::TokKind;
use std::fmt;

/// Identifier of a lint rule (or of the linter's own meta-diagnostics).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum RuleId {
    /// R1 §4.1: latches are acquired in search order, top-down; climbing a
    /// saved path uses conditional (`try_*`) acquisition only, and U→X
    /// promotion happens before any later-ordered latch is taken.
    LatchOrder,
    /// R2 §4.2.2: SMO completion paths never block on locks — only `try_`
    /// variants are permitted in `core::{completion,post,consolidate}`.
    NoWait,
    /// R3 §4.3.1: a function that dirties a page must have logged first
    /// (WAL: log-before-dirty).
    LogBeforeDirty,
    /// R4 §4.3.2: redo/undo code must be panic-free — recovery running into
    /// a torn log tail or unexpected page state must return an error, not
    /// abort the process.
    PanicFreeRecovery,
    /// R5: raw `std::sync` primitives and `std::time::Instant` only inside
    /// `pagestore::sync` and `crates/obs` — everything else goes through
    /// the poison-free wrappers / `Stopwatch`, keeping blocking observable.
    SyncHygiene,
    /// R6: the simulation kit and sim-driven tests stay deterministic — no
    /// wall clocks, entropy, or environment reads.
    Determinism,
    /// F1 §4.1 (flow): the workspace latch-acquisition order graph must be
    /// acyclic — a cycle among blocking acquisitions is a potential
    /// deadlock no interleaving test is guaranteed to hit.
    LatchCycle,
    /// F2 (flow): latch-guard lifetime — leaked via `forget`, held across a
    /// blocking wait on some path, or dropped twice.
    GuardLifetime,
    /// Meta: malformed suppression (missing reason, unknown rule).
    LintAllow,
    /// Meta: a suppression that no longer suppresses anything.
    StaleAllow,
}

impl RuleId {
    /// All real (suppressible) rules.
    pub const ALL: [RuleId; 8] = [
        RuleId::LatchOrder,
        RuleId::NoWait,
        RuleId::LogBeforeDirty,
        RuleId::PanicFreeRecovery,
        RuleId::SyncHygiene,
        RuleId::Determinism,
        RuleId::LatchCycle,
        RuleId::GuardLifetime,
    ];

    /// The kebab-case id used in reports and `allow(...)` directives.
    pub fn name(self) -> &'static str {
        match self {
            RuleId::LatchOrder => "latch-order",
            RuleId::NoWait => "no-wait",
            RuleId::LogBeforeDirty => "log-before-dirty",
            RuleId::PanicFreeRecovery => "panic-free-recovery",
            RuleId::SyncHygiene => "sync-hygiene",
            RuleId::Determinism => "determinism",
            RuleId::LatchCycle => "latch-cycle",
            RuleId::GuardLifetime => "guard-lifetime",
            RuleId::LintAllow => "lint-allow",
            RuleId::StaleAllow => "stale-allow",
        }
    }

    /// Parse an `allow(...)` rule id.
    pub fn parse(s: &str) -> Option<RuleId> {
        RuleId::ALL.into_iter().find(|r| r.name() == s)
    }

    /// One-line description for the summary table.
    pub fn describe(self) -> &'static str {
        match self {
            RuleId::LatchOrder => "top-down latch order; climbs and promotes use try_* (paper 4.1)",
            RuleId::NoWait => "SMO completion paths take locks conditionally only (paper 4.2.2)",
            RuleId::LogBeforeDirty => "WAL append precedes page dirtying (paper 4.3.1)",
            RuleId::PanicFreeRecovery => "redo/undo paths return errors, never panic (paper 4.3.2)",
            RuleId::SyncHygiene => "raw std::sync / Instant only in pagestore::sync and obs",
            RuleId::Determinism => "sim kit and sim tests are clock/entropy/env free",
            RuleId::LatchCycle => "workspace latch-acquisition order graph is acyclic (paper 4.1)",
            RuleId::GuardLifetime => "guards are not leaked, double-dropped, or held over waits",
            RuleId::LintAllow => "suppressions carry a rule id and a reason",
            RuleId::StaleAllow => "suppressions that fire nothing are removed",
        }
    }
}

impl fmt::Display for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One diagnostic.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Workspace-relative file path.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// The violated rule.
    pub rule: RuleId,
    /// Human-readable message.
    pub msg: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {}: {}",
            self.path, self.line, self.rule, self.msg
        )
    }
}

/// Run the token-tier rules over `cx`. The linear log-before-dirty scan is
/// subsumed by the path-sensitive flow analysis and only runs as a
/// fallback (`include_log_before_dirty`) when the file failed structural
/// parsing, so the gate never weakens mid-transition.
pub fn run_token(cx: &FileCx, include_log_before_dirty: bool) -> Vec<Finding> {
    let mut out = Vec::new();
    latch_order(cx, &mut out);
    no_wait(cx, &mut out);
    if include_log_before_dirty {
        log_before_dirty(cx, &mut out);
    }
    panic_free_recovery(cx, &mut out);
    sync_hygiene(cx, &mut out);
    determinism(cx, &mut out);
    out
}

fn finding(out: &mut Vec<Finding>, cx: &FileCx, line: u32, rule: RuleId, msg: String) {
    out.push(Finding {
        path: cx.path.clone(),
        line,
        rule,
        msg,
    });
}

/// Blocking latch-acquisition method call at `i`: `.s()`, `.u()`, `.x()`
/// with an empty argument list (the `Latch`/`PinnedPage` acquire API).
fn blocking_latch_call(cx: &FileCx, i: usize) -> Option<&'static str> {
    let name = cx.method_call_at(i)?;
    let mode = match name {
        "s" => "S",
        "u" => "U",
        "x" => "X",
        _ => return None,
    };
    if cx.tokens.get(i + 3)?.is_punct(')') {
        Some(mode)
    } else {
        None
    }
}

// ---- R1: latch-order (§4.1) ----------------------------------------------

/// Two checks per function:
///
/// 1. after an upward walk over a saved path (`path`/`entries ... .rev()`),
///    only `try_*` acquisition is allowed — climbing with a blocking latch
///    is the deadlock the paper's search-order argument excludes;
/// 2. `promote()` must not run while a blocking latch acquired in a
///    still-open scope is held: §4.1.1 permits promotion only when no
///    later-ordered latch is held.
fn latch_order(cx: &FileCx, out: &mut Vec<Finding>) {
    if cx.path == "crates/pagestore/src/latch.rs" {
        return; // the latch implementation itself
    }
    for f in &cx.fns {
        if cx.is_test[f.body_start] {
            continue;
        }
        let mut climbing = false;
        // Blocking acquisitions whose guard is plausibly still live: popped
        // when their scope closes, their guard variable is `drop`ped, or
        // they are themselves the promotion receiver.
        struct Held {
            depth: u32,
            mode: &'static str,
            line: u32,
            var: Option<String>,
        }
        let mut held: Vec<Held> = Vec::new();
        for i in f.body_start..=f.body_end.min(cx.tokens.len() - 1) {
            let d = cx.depth[i];
            while held.last().is_some_and(|h| h.depth > d) {
                held.pop();
            }
            if cx.method_call_at(i) == Some("rev") {
                let lookback = i.saturating_sub(8);
                if cx.tokens[lookback..i]
                    .iter()
                    .any(|t| t.is_ident("path") || t.is_ident("entries"))
                {
                    climbing = true;
                }
            }
            // `drop(g)` releases g's latch.
            if cx.tokens[i].is_ident("drop")
                && cx.tokens.get(i + 1).is_some_and(|t| t.is_punct('('))
                && cx.tokens.get(i + 3).is_some_and(|t| t.is_punct(')'))
            {
                if let Some(v) = cx.tokens.get(i + 2).filter(|t| t.kind == TokKind::Ident) {
                    if let Some(pos) = held.iter().rposition(|h| h.var.as_deref() == Some(&v.text))
                    {
                        held.remove(pos);
                    }
                }
            }
            if let Some(mode) = blocking_latch_call(cx, i) {
                if climbing {
                    finding(
                        out,
                        cx,
                        cx.tokens[i].line,
                        RuleId::LatchOrder,
                        format!(
                            "blocking {mode}-latch acquisition while climbing a saved path \
                             in `{}`; climbs go up the search order and must use try_* \
                             (paper 4.1 / 5.2.2b)",
                            f.name
                        ),
                    );
                } else {
                    held.push(Held {
                        depth: d,
                        mode,
                        line: cx.tokens[i].line,
                        var: assigned_var(cx, i, f.body_start),
                    });
                }
            }
            if cx.method_call_at(i) == Some("promote") {
                // The receiver's own latch is the one being promoted; it is
                // not "held after" itself.
                if i >= 1 && cx.tokens[i - 1].kind == TokKind::Ident {
                    let recv = &cx.tokens[i - 1].text;
                    if let Some(pos) = held.iter().rposition(|h| h.var.as_deref() == Some(recv)) {
                        held.remove(pos);
                    }
                }
                if let Some(h) = held.last() {
                    finding(
                        out,
                        cx,
                        cx.tokens[i].line,
                        RuleId::LatchOrder,
                        format!(
                            "U->X promotion in `{}` while a blocking {}-latch from \
                             line {} may still be held; promote before latching \
                             later-ordered nodes (paper 4.1.1)",
                            f.name, h.mode, h.line
                        ),
                    );
                }
            }
        }
    }
}

/// The variable a blocking acquisition at token `i` is assigned to:
/// `let [mut] NAME = recv.x();` or `NAME = recv.x();`. `None` when the
/// guard is consumed inline (passed to a call, returned, ...).
fn assigned_var(cx: &FileCx, i: usize, floor: usize) -> Option<String> {
    // Walk back to the start of the statement.
    let mut j = i;
    while j > floor {
        let t = &cx.tokens[j - 1];
        if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') || t.is_punct(',') {
            break;
        }
        j -= 1;
    }
    // Find a single `=` in the statement prefix; the ident before it is the
    // binding. `==`-family comparisons have a neighbouring `=`/`<`/`>`/`!`.
    for k in j..i {
        if cx.tokens[k].is_punct('=') {
            let prevp = k > j && {
                let p = &cx.tokens[k - 1];
                p.is_punct('=') || p.is_punct('<') || p.is_punct('>') || p.is_punct('!')
            };
            let nextp = cx.tokens.get(k + 1).is_some_and(|p| p.is_punct('='));
            if prevp || nextp {
                continue;
            }
            if k > j && cx.tokens[k - 1].kind == TokKind::Ident {
                return Some(cx.tokens[k - 1].text.clone());
            }
        }
    }
    None
}

// ---- R2: no-wait (§4.2.2) ------------------------------------------------

/// In SMO completion paths, every lock acquisition must be conditional:
/// a completing action already holds latches, and blocking on a lock while
/// latched is the latch-lock deadlock the No-Wait Rule exists to prevent.
fn no_wait(cx: &FileCx, out: &mut Vec<Finding>) {
    const SCOPE: [&str; 3] = [
        "crates/core/src/completion.rs",
        "crates/core/src/post.rs",
        "crates/core/src/consolidate.rs",
    ];
    if !SCOPE.contains(&cx.path.as_str()) {
        return;
    }
    for i in 0..cx.tokens.len() {
        if cx.is_test[i] {
            continue;
        }
        if let Some(name) = cx.method_call_at(i) {
            if matches!(name, "lock" | "acquire" | "lock_alloc") {
                finding(
                    out,
                    cx,
                    cx.tokens[i].line,
                    RuleId::NoWait,
                    format!(
                        "blocking `{name}(...)` in an SMO completion path; the No-Wait \
                         Rule allows only try_-variant acquisition here (paper 4.2.2)"
                    ),
                );
            }
        }
    }
}

// ---- R3: log-before-dirty (§4.3.1) ---------------------------------------

/// A function that dirties a page (`mark_dirty` / `mark_dirty_at` /
/// `data_mut`) must have a WAL `append` earlier in the same function: the
/// log record describing a change must exist before the change is visible
/// to the buffer manager's write-back.
fn log_before_dirty(cx: &FileCx, out: &mut Vec<Finding>) {
    if cx.path == "crates/pagestore/src/buffer.rs" {
        return; // defines the dirtying primitive itself
    }
    for f in &cx.fns {
        if cx.is_test[f.body_start] {
            continue;
        }
        let mut logged = false;
        for i in f.body_start..=f.body_end.min(cx.tokens.len() - 1) {
            match cx.method_call_at(i) {
                Some("append") => logged = true,
                Some(m @ ("mark_dirty" | "mark_dirty_at" | "data_mut")) if !logged => {
                    finding(
                        out,
                        cx,
                        cx.tokens[i].line,
                        RuleId::LogBeforeDirty,
                        format!(
                            "`{}` calls `{m}` with no earlier WAL append in the same \
                             function; log before dirtying (paper 4.3.1)",
                            f.name
                        ),
                    );
                }
                _ => {}
            }
        }
    }
}

// ---- R4: panic-free recovery (§4.3.2) ------------------------------------

/// Recovery and undo code must degrade to typed errors: a torn log tail or
/// an unexpected page image is an input, not a bug, and `unwrap`-class
/// aborts would turn restartable recovery into a crash loop. The log
/// manager itself is in scope too: `force_to` parses volatile tail frames,
/// and a torn frame there must surface as `StoreError::Corrupt`. So is the
/// instant-restart module: on-demand redo runs inside every post-crash
/// fetch, where a panic would take down the serving store, not a recovery
/// tool.
fn panic_free_recovery(cx: &FileCx, out: &mut Vec<Finding>) {
    let scoped = cx.path == "crates/wal/src/recovery.rs"
        || cx.path == "crates/wal/src/log.rs"
        || cx.path == "crates/wal/src/instant.rs"
        || cx.path.ends_with("/undo.rs");
    if !scoped {
        return;
    }
    for i in 0..cx.tokens.len() {
        if cx.is_test[i] {
            continue;
        }
        let t = &cx.tokens[i];
        // `.unwrap()` / `.expect(...)` method calls.
        if let Some(name @ ("unwrap" | "expect")) = cx.method_call_at(i) {
            finding(
                out,
                cx,
                t.line,
                RuleId::PanicFreeRecovery,
                format!(
                    "`.{name}()` in a recovery/undo path; return a typed error instead \
                     (paper 4.3.2: recovery takes no special measures, and never panics)"
                ),
            );
        }
        // Panicking macros.
        if t.kind == TokKind::Ident
            && matches!(
                t.text.as_str(),
                "panic"
                    | "unreachable"
                    | "todo"
                    | "unimplemented"
                    | "assert"
                    | "assert_eq"
                    | "assert_ne"
            )
            && cx.tokens.get(i + 1).is_some_and(|n| n.is_punct('!'))
        {
            finding(
                out,
                cx,
                t.line,
                RuleId::PanicFreeRecovery,
                format!(
                    "`{}!` in a recovery/undo path; return a typed error instead",
                    t.text
                ),
            );
        }
        // Direct indexing: `expr[...]` — a missing key or short slice must
        // surface as an error, not a panic.
        if t.is_punct('[') && i > 0 {
            let prev = &cx.tokens[i - 1];
            let is_index = prev.kind == TokKind::Ident && !prev.is_ident("mut")
                || prev.is_punct(')')
                || prev.is_punct(']');
            let attr = prev.is_punct('#');
            if is_index && !attr {
                finding(
                    out,
                    cx,
                    t.line,
                    RuleId::PanicFreeRecovery,
                    "direct indexing in a recovery/undo path can panic; use `.get(...)` \
                     and return a typed error"
                        .to_string(),
                );
            }
        }
    }
}

// ---- R5: sync hygiene ----------------------------------------------------

/// `std::sync::{Mutex, RwLock, Condvar}`, `std::time::Instant`, and
/// `SystemTime` are confined to `pagestore::sync` (the poison-free
/// wrappers) and `crates/obs` (`Stopwatch`). Everything else must use the
/// wrappers so blocking stays poison-free and observable.
fn sync_hygiene(cx: &FileCx, out: &mut Vec<Finding>) {
    if cx.path == "crates/pagestore/src/sync.rs" || cx.path.starts_with("crates/obs/") {
        return;
    }
    const PRIMS: [&str; 3] = ["Mutex", "RwLock", "Condvar"];
    for i in 0..cx.tokens.len() {
        if cx.is_test[i] {
            continue;
        }
        let t = &cx.tokens[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        // `std::sync::Mutex` path form (covers both `use` and inline paths;
        // the workspace's own `pagestore::sync::Mutex` wrapper is exempt).
        if PRIMS.contains(&t.text.as_str())
            && cx.path_prefix_is(i, "sync")
            && i >= 6
            && cx.tokens[i - 4].is_punct(':')
            && cx.tokens[i - 5].is_punct(':')
            && cx.tokens[i - 6].is_ident("std")
        {
            finding(
                out,
                cx,
                t.line,
                RuleId::SyncHygiene,
                format!(
                    "direct `std::sync::{}`; use the poison-free wrappers in \
                     `pitree_pagestore::sync`",
                    t.text
                ),
            );
        }
        // `use std::sync::{A, Mutex, ...}` group form.
        if t.is_ident("sync")
            && cx.path_prefix_is(i, "std")
            && cx.tokens.get(i + 1).is_some_and(|n| n.is_punct(':'))
            && cx.tokens.get(i + 2).is_some_and(|n| n.is_punct(':'))
            && cx.tokens.get(i + 3).is_some_and(|n| n.is_punct('{'))
        {
            let close = crate::context::matching_brace(&cx.tokens, i + 3);
            for j in i + 4..close {
                let g = &cx.tokens[j];
                if g.kind == TokKind::Ident && PRIMS.contains(&g.text.as_str()) {
                    finding(
                        out,
                        cx,
                        g.line,
                        RuleId::SyncHygiene,
                        format!(
                            "direct `std::sync::{}`; use the poison-free wrappers in \
                             `pitree_pagestore::sync`",
                            g.text
                        ),
                    );
                }
            }
        }
        if t.is_ident("Instant") {
            finding(
                out,
                cx,
                t.line,
                RuleId::SyncHygiene,
                "direct `std::time::Instant`; use `pitree_obs::Stopwatch` so timing \
                 is observable and mockable"
                    .to_string(),
            );
        }
        if t.is_ident("SystemTime") {
            finding(
                out,
                cx,
                t.line,
                RuleId::SyncHygiene,
                "wall-clock `SystemTime` outside the observability layer".to_string(),
            );
        }
    }
}

// ---- R6: determinism -----------------------------------------------------

/// The simulation kit exists so every failure replays from a seed; a wall
/// clock, entropy source, or environment read anywhere in `crates/sim` or a
/// sim-driven test silently destroys that property. Applies to test code
/// too — sim tests are exactly the point.
fn determinism(cx: &FileCx, out: &mut Vec<Finding>) {
    let in_sim = cx.path.starts_with("crates/sim/");
    let sim_test = (cx.path.contains("/tests/") || cx.path.starts_with("tests/"))
        && cx.tokens.iter().any(|t| t.is_ident("pitree_sim"));
    if !in_sim && !sim_test {
        return;
    }
    for (i, t) in cx.tokens.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        let msg = match t.text.as_str() {
            "SystemTime" | "UNIX_EPOCH" => "wall clock in deterministic sim code",
            "thread_rng" | "from_entropy" => "OS entropy in deterministic sim code",
            "RandomState" | "DefaultHasher" => {
                "randomly-seeded hasher in deterministic sim code; iteration order \
                 will differ across runs"
            }
            "now" if cx.path_prefix_is(i, "Instant") => "wall clock in deterministic sim code",
            "var" | "var_os" if cx.path_prefix_is(i, "env") => {
                "environment read in deterministic sim code"
            }
            _ => continue,
        };
        finding(
            out,
            cx,
            t.line,
            RuleId::Determinism,
            format!("{msg}; derive everything from the run seed"),
        );
    }
}
