//! The metric registry and its cheap [`Recorder`] handle.
//!
//! A [`Registry`] is one observability namespace — the assembled store
//! creates one and threads a [`Recorder`] through the buffer pool, the
//! log manager, the lock table, and the tree, so that everything one
//! workload does lands in one place and two stores (two tests) never
//! share state. There is deliberately **no process-global registry**:
//! globals would bleed metrics across parallel `cargo test` threads and
//! break the sim determinism gate.

use crate::counter::{Counter, CounterCell};
use crate::event::{Event, EventKind, ThreadRing};
use crate::hist::{Hist, HistCell};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, Weak};

/// Default bound of each per-thread event ring.
const DEFAULT_EVENT_CAP: usize = 8192;

/// Process-unique registry ids, keying the thread-local ring cache.
static NEXT_REGISTRY_ID: AtomicU64 = AtomicU64::new(1);

pub(crate) struct Inner {
    id: u64,
    counters: Mutex<BTreeMap<&'static str, Counter>>,
    hists: Mutex<BTreeMap<&'static str, Hist>>,
    clock: AtomicU64,
    next_tid: AtomicU32,
    rings: Mutex<Vec<Arc<ThreadRing>>>,
    event_cap: usize,
}

/// One thread-local cache slot: registry id, liveness probe, ring.
type CachedRing = (u64, Weak<Inner>, Arc<ThreadRing>);

thread_local! {
    /// This thread's rings, one per registry it has emitted events into.
    static RING_CACHE: RefCell<Vec<CachedRing>> = const { RefCell::new(Vec::new()) };
}

/// One observability namespace: counters, histograms, the logical event
/// clock, and the per-thread event rings. See the crate docs.
#[derive(Clone)]
pub struct Registry {
    inner: Arc<Inner>,
}

impl Registry {
    /// A fresh registry with the default per-thread event-ring bound.
    pub fn new() -> Registry {
        Registry::with_event_capacity(DEFAULT_EVENT_CAP)
    }

    /// A fresh registry whose per-thread event rings hold at most `cap`
    /// events (`0` disables event recording entirely).
    pub fn with_event_capacity(cap: usize) -> Registry {
        Registry {
            inner: Arc::new(Inner {
                id: NEXT_REGISTRY_ID.fetch_add(1, Ordering::Relaxed),
                counters: Mutex::new(BTreeMap::new()),
                hists: Mutex::new(BTreeMap::new()),
                clock: AtomicU64::new(0),
                next_tid: AtomicU32::new(0),
                rings: Mutex::new(Vec::new()),
                event_cap: cap,
            }),
        }
    }

    /// A cheap recording handle onto this registry.
    pub fn recorder(&self) -> Recorder {
        Recorder {
            inner: Arc::clone(&self.inner),
        }
    }

    /// Render the stable, diffable text table: every registered counter
    /// and histogram (sorted by name) plus event accounting.
    pub fn report(&self) -> String {
        let mut out = String::new();
        out.push_str("== counters ==\n");
        for (name, c) in self.inner.counters.lock().unwrap().iter() {
            let _ = writeln!(out, "{name:<34} {:>12}", c.get());
        }
        out.push_str("== histograms (ns) ==\n");
        let _ = writeln!(
            out,
            "{:<34} {:>10} {:>12} {:>12} {:>12} {:>12}",
            "name", "count", "p50", "p95", "p99", "max"
        );
        for (name, h) in self.inner.hists.lock().unwrap().iter() {
            let (p50, p95, p99, max) = h.percentiles();
            let _ = writeln!(
                out,
                "{name:<34} {:>10} {:>12} {:>12} {:>12} {:>12}",
                h.count(),
                p50,
                p95,
                p99,
                max
            );
        }
        let (emitted, buffered, dropped, threads) = self.event_totals();
        let _ = writeln!(
            out,
            "== events ==\nemitted={emitted} buffered={buffered} dropped={dropped} threads={threads}"
        );
        out
    }

    /// `(emitted, buffered, dropped, threads)` over all rings.
    fn event_totals(&self) -> (u64, u64, u64, u32) {
        let rings = self.inner.rings.lock().unwrap();
        let mut emitted = 0;
        let mut buffered = 0;
        let mut dropped = 0;
        for r in rings.iter() {
            emitted += r.emitted();
            buffered += r.buffered_len() as u64;
            dropped += r.dropped();
        }
        (emitted, buffered, dropped, rings.len() as u32)
    }

    /// Remove and return all buffered events, merged across threads and
    /// sorted by logical clock (total order of emission).
    pub fn drain_events(&self) -> Vec<Event> {
        let rings = self.inner.rings.lock().unwrap();
        let mut out = Vec::new();
        for r in rings.iter() {
            out.extend(r.drain());
        }
        out.sort_by_key(|e| e.clock);
        out
    }

    /// Drain all buffered events and serialize them as JSONL, one event
    /// per line. With a single recording thread this output is
    /// byte-identical across runs of the same deterministic workload.
    pub fn events_jsonl(&self) -> String {
        let mut out = String::new();
        for e in self.drain_events() {
            out.push_str(&e.to_json());
            out.push('\n');
        }
        out
    }
}

impl Default for Registry {
    fn default() -> Self {
        Registry::new()
    }
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry")
            .field("id", &self.inner.id)
            .finish()
    }
}

/// A cheap, cloneable recording handle held by instrumented components.
///
/// `counter`/`hist` are get-or-create by name and intended for setup
/// time; the returned handles are the hot path. [`Recorder::event`]
/// appends to the calling thread's bounded ring.
#[derive(Clone)]
pub struct Recorder {
    inner: Arc<Inner>,
}

impl Recorder {
    /// A recorder onto a fresh private registry (detached default for
    /// components constructed without explicit wiring).
    pub fn detached() -> Recorder {
        Registry::new().recorder()
    }

    /// The registry this recorder feeds.
    pub fn registry(&self) -> Registry {
        Registry {
            inner: Arc::clone(&self.inner),
        }
    }

    /// Get or create the counter named `name`.
    pub fn counter(&self, name: &'static str) -> Counter {
        self.inner
            .counters
            .lock()
            .unwrap()
            .entry(name)
            .or_insert_with(|| Counter(Arc::new(CounterCell::new())))
            .clone()
    }

    /// Get or create the histogram named `name`.
    pub fn hist(&self, name: &'static str) -> Hist {
        self.inner
            .hists
            .lock()
            .unwrap()
            .entry(name)
            .or_insert_with(|| Hist(Arc::new(HistCell::new())))
            .clone()
    }

    /// Record one event into the calling thread's ring, stamped with the
    /// registry's logical clock. A no-op when the registry was built
    /// with event capacity 0.
    #[inline]
    pub fn event(&self, kind: EventKind, a: u64, b: u64) {
        if self.inner.event_cap == 0 {
            return;
        }
        let clock = self.inner.clock.fetch_add(1, Ordering::Relaxed);
        let ring = self.my_ring();
        ring.push(clock, kind, a, b);
    }

    /// This thread's ring for this registry, creating and registering it
    /// on first use.
    fn my_ring(&self) -> Arc<ThreadRing> {
        RING_CACHE.with(|cache| {
            let mut cache = cache.borrow_mut();
            if let Some((_, _, ring)) = cache.iter().find(|(id, _, _)| *id == self.inner.id) {
                return Arc::clone(ring);
            }
            // Drop cache entries whose registry died (bounded growth when
            // a thread outlives many registries, e.g. sim sweeps).
            if cache.len() >= 16 {
                cache.retain(|(_, weak, _)| weak.strong_count() > 0);
            }
            let tid = self.inner.next_tid.fetch_add(1, Ordering::Relaxed);
            let ring = Arc::new(ThreadRing::new(tid, self.inner.event_cap));
            self.inner.rings.lock().unwrap().push(Arc::clone(&ring));
            cache.push((
                self.inner.id,
                Arc::downgrade(&self.inner),
                Arc::clone(&ring),
            ));
            ring
        })
    }

    /// Shorthand for [`Registry::report`].
    pub fn report(&self) -> String {
        self.registry().report()
    }
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Recorder")
            .field("id", &self.inner.id)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_are_get_or_create() {
        let reg = Registry::new();
        let r = reg.recorder();
        r.counter("a").inc();
        r.counter("a").inc();
        assert_eq!(r.counter("a").get(), 2);
        assert_eq!(r.counter("b").get(), 0);
    }

    #[test]
    fn registries_are_isolated() {
        let r1 = Registry::new().recorder();
        let r2 = Registry::new().recorder();
        r1.counter("x").inc();
        assert_eq!(r2.counter("x").get(), 0);
    }

    #[test]
    fn report_is_sorted_and_stable() {
        let reg = Registry::new();
        let r = reg.recorder();
        r.counter("zeta").add(3);
        r.counter("alpha").add(1);
        r.hist("lat.ns").record(100);
        let rep1 = reg.report();
        let rep2 = reg.report();
        assert_eq!(rep1, rep2, "report must be stable");
        let alpha = rep1.find("alpha").unwrap();
        let zeta = rep1.find("zeta").unwrap();
        assert!(alpha < zeta, "counters sorted by name");
        assert!(rep1.contains("== events =="));
    }

    #[test]
    fn events_merge_in_clock_order() {
        let reg = Registry::new();
        let r = reg.recorder();
        r.event(EventKind::BufHit, 1, 0);
        r.event(EventKind::BufMiss, 2, 0);
        let evs = reg.drain_events();
        assert_eq!(evs.len(), 2);
        assert!(evs[0].clock < evs[1].clock);
        assert_eq!(evs[0].kind, EventKind::BufHit);
        // Drained: a second drain is empty.
        assert!(reg.drain_events().is_empty());
    }

    #[test]
    fn multi_thread_events_all_arrive() {
        let reg = Registry::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let r = reg.recorder();
                s.spawn(move || {
                    for i in 0..100 {
                        r.event(EventKind::WalAppend, i, 0);
                    }
                });
            }
        });
        let evs = reg.drain_events();
        assert_eq!(evs.len(), 400);
        // Clock stamps are unique and sorted.
        for w in evs.windows(2) {
            assert!(w[0].clock < w[1].clock);
        }
        // Per-thread seqs are gap-free.
        for tid in 0..4 {
            let seqs: Vec<u64> = evs.iter().filter(|e| e.tid == tid).map(|e| e.seq).collect();
            assert_eq!(seqs.len(), 100);
        }
    }

    #[test]
    fn event_capacity_zero_disables_recording() {
        let reg = Registry::with_event_capacity(0);
        let r = reg.recorder();
        r.event(EventKind::BufHit, 0, 0);
        assert!(reg.drain_events().is_empty());
    }

    #[test]
    fn jsonl_is_one_line_per_event() {
        let reg = Registry::new();
        let r = reg.recorder();
        r.event(EventKind::LockGrant, 5, 1);
        r.event(EventKind::LockGrant, 6, 1);
        let dump = reg.events_jsonl();
        assert_eq!(dump.lines().count(), 2);
        assert!(dump.starts_with("{\"clock\":"));
    }
}
