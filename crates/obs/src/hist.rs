//! Log2-bucket latency histograms.
//!
//! Values (nanoseconds, usually) fall into 65 power-of-two buckets:
//! bucket 0 holds exactly the value 0, bucket *i* (1 ≤ *i* ≤ 64) holds
//! the range `[2^(i-1), 2^i - 1]`. Quantiles are answered from the
//! cumulative bucket counts and reported as the containing bucket's
//! upper bound — at most 2× off, which is plenty for p50/p95/p99 of
//! latency distributions spanning orders of magnitude. The maximum is
//! tracked exactly.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Bucket 0 for zero plus one bucket per bit position.
const BUCKETS: usize = 65;

pub(crate) struct HistCell {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl HistCell {
    pub(crate) fn new() -> HistCell {
        HistCell {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

/// Which bucket `v` falls into: 0 for 0, else `64 - leading_zeros(v)`.
#[inline]
fn bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// Inclusive upper bound of bucket `i` (used as the quantile estimate).
fn bucket_upper(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// A log2-bucket histogram handle. Cloning is cheap; all clones feed the
/// same cells. Obtain named instances through [`crate::Recorder::hist`].
#[derive(Clone)]
pub struct Hist(pub(crate) Arc<HistCell>);

impl Hist {
    /// A histogram not registered in any [`crate::Registry`].
    pub fn detached() -> Hist {
        Hist(Arc::new(HistCell::new()))
    }

    /// Record one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        let c = &self.0;
        c.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        c.count.fetch_add(1, Ordering::Relaxed);
        c.sum.fetch_add(v, Ordering::Relaxed);
        c.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples (saturating in the extreme).
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }

    /// Exact maximum sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.0.max.load(Ordering::Relaxed)
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) as the upper bound of the bucket
    /// containing it, clamped to the exact maximum (so the topmost
    /// occupied bucket answers exactly). Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        // Rank of the sample we want, 1-based.
        let target = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut seen = 0u64;
        for i in 0..BUCKETS {
            seen += self.0.buckets[i].load(Ordering::Relaxed);
            if seen >= target {
                return bucket_upper(i).min(self.max());
            }
        }
        self.max()
    }

    /// `(p50, p95, p99, max)` in one call, for report rows.
    pub fn percentiles(&self) -> (u64, u64, u64, u64) {
        (
            self.quantile(0.50),
            self.quantile(0.95),
            self.quantile(0.99),
            self.max(),
        )
    }
}

impl std::fmt::Debug for Hist {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (p50, p95, p99, max) = self.percentiles();
        f.debug_struct("Hist")
            .field("count", &self.count())
            .field("p50", &p50)
            .field("p95", &p95)
            .field("p99", &p99)
            .field("max", &max)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_goes_to_bucket_zero() {
        let h = Hist::detached();
        h.record(0);
        assert_eq!(h.count(), 1);
        assert_eq!(h.max(), 0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.quantile(1.0), 0);
    }

    #[test]
    fn u64_max_is_representable() {
        let h = Hist::detached();
        h.record(u64::MAX);
        assert_eq!(h.max(), u64::MAX);
        assert_eq!(h.quantile(0.99), u64::MAX);
    }

    #[test]
    fn bucket_boundaries() {
        // 1 is the first value of bucket 1; 2^k is the first value of
        // bucket k+1; 2^k - 1 the last of bucket k.
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(1 << 63), 64);
        assert_eq!(bucket_of(u64::MAX), 64);
    }

    #[test]
    fn quantile_is_within_one_bucket() {
        let h = Hist::detached();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let p50 = h.quantile(0.50);
        // True median is 500; a log2 bucket answer must be in [500, 1023].
        assert!((500..=1023).contains(&p50), "p50 = {p50}");
        let p99 = h.quantile(0.99);
        assert!((990..=1023).contains(&p99), "p99 = {p99}");
        assert_eq!(h.max(), 1000);
    }

    #[test]
    fn empty_histogram_answers_zero() {
        let h = Hist::detached();
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn single_sample_quantiles_are_exact() {
        let h = Hist::detached();
        h.record(777);
        let (p50, p95, p99, max) = h.percentiles();
        assert_eq!(max, 777);
        // The only occupied bucket is the top one: answered with max.
        assert_eq!(p50, 777);
        assert_eq!(p95, 777);
        assert_eq!(p99, 777);
    }

    #[test]
    fn sum_accumulates() {
        let h = Hist::detached();
        h.record(10);
        h.record(20);
        assert_eq!(h.sum(), 30);
    }
}
