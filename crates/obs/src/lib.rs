//! Observability substrate for the Π-tree workspace.
//!
//! Every layer of the reproduction — latches, the buffer pool, the
//! write-ahead log, the lock manager, and the tree protocol itself —
//! records what it does through this crate, so that the claims of
//! Lomet & Salzberg's *Access Method Concurrency with Recovery* can be
//! checked with numbers rather than trust: intermediate states seen
//! (`tree.side_traversals`, §3), No-Wait-Rule restarts
//! (`tree.no_wait_restarts`, §4.1.2), relative durability
//! (`wal.forces` vs `action.commits`, §4.3.1), recovery pass cost
//! (`recovery.*_ns`), and so on. `OBSERVABILITY.md` at the workspace
//! root documents every exported metric and event.
//!
//! Like the rest of the workspace, the crate is std-only by design
//! (see DESIGN.md §5): no external dependencies, nothing to install.
//!
//! # Architecture
//!
//! * [`Registry`] — one metric namespace, typically one per assembled
//!   store. Owns counters, histograms, the logical event clock, and the
//!   per-thread event rings. [`Registry::report`] renders a stable,
//!   diffable text table; [`Registry::drain_events`] /
//!   [`Registry::events_jsonl`] export the event trace.
//! * [`Recorder`] — a cheap, cloneable handle onto a registry, held by
//!   every instrumented component. [`Recorder::counter`] /
//!   [`Recorder::hist`] get-or-create named instruments once at setup;
//!   the returned handles are lock-free on the hot path.
//! * [`Counter`] — a sharded, lock-free monotonic counter.
//! * [`Hist`] — a log2-bucket histogram with exact max and approximate
//!   p50/p95/p99, for latencies in nanoseconds.
//! * [`Event`] / [`EventKind`] — fixed-size trace records stamped with a
//!   per-thread sequence number and a registry-wide **logical** clock
//!   (never wall time), so a single-threaded run under a fixed
//!   `pitree-sim` seed produces a byte-identical event stream every
//!   time. Each thread writes into its own bounded ring
//!   ([`Registry::with_event_capacity`]); when a ring wraps, the oldest
//!   events are dropped and counted, never silently lost.
//!
//! # Determinism contract
//!
//! Events carry no wall-clock data — ordering comes from the logical
//! clock, identity from the per-thread sequence number. Histograms *do*
//! observe wall time ([`Stopwatch`]); they are aggregate-only and are
//! excluded from the determinism contract. The sim-gate test in
//! `pitree-harness` (`obs_determinism.rs`) holds the line: two runs of
//! the same seeded workload must serialize to identical JSONL.

#![warn(missing_docs)]

mod counter;
mod event;
mod hist;
mod registry;

pub use counter::Counter;
pub use event::{Event, EventKind};
pub use hist::Hist;
pub use registry::{Recorder, Registry};

use std::time::Instant;

/// A started wall-clock timer for feeding latency histograms.
///
/// ```
/// let reg = pitree_obs::Registry::new();
/// let h = reg.recorder().hist("demo.ns");
/// let t = pitree_obs::Stopwatch::start();
/// // ... the measured region ...
/// h.record(t.elapsed_ns());
/// assert_eq!(h.count(), 1);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch(Instant);

impl Stopwatch {
    /// Start timing now.
    #[inline]
    pub fn start() -> Stopwatch {
        Stopwatch(Instant::now())
    }

    /// Nanoseconds elapsed since [`Stopwatch::start`], saturated to `u64`.
    #[inline]
    pub fn elapsed_ns(&self) -> u64 {
        let d = self.0.elapsed();
        d.as_nanos().min(u64::MAX as u128) as u64
    }
}
