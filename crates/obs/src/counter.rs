//! Sharded lock-free counters.
//!
//! A [`Counter`] spreads increments over a small fixed set of
//! cache-line-padded atomic cells, indexed by a per-thread shard id, so
//! that hot counters (latch acquisitions, buffer hits) never bounce a
//! single cache line between cores. Reads sum the shards; they are
//! monotone but not linearizable snapshots, which is all an operation
//! counter needs.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Number of shards per counter. Power of two; increments index it with
/// a cheap mask of the thread's shard id.
const SHARDS: usize = 16;

/// One cache line per shard so two shards never share a line.
#[repr(align(64))]
#[derive(Default)]
struct Shard(AtomicU64);

/// Round-robin assignment of shard ids to threads.
static NEXT_SHARD: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static MY_SHARD: Cell<usize> = const { Cell::new(usize::MAX) };
}

#[inline]
fn my_shard() -> usize {
    MY_SHARD.with(|s| {
        let v = s.get();
        if v != usize::MAX {
            return v;
        }
        let v = NEXT_SHARD.fetch_add(1, Ordering::Relaxed) & (SHARDS - 1);
        s.set(v);
        v
    })
}

pub(crate) struct CounterCell {
    shards: [Shard; SHARDS],
}

impl CounterCell {
    pub(crate) fn new() -> CounterCell {
        CounterCell {
            shards: Default::default(),
        }
    }
}

/// A monotonically increasing, sharded, lock-free counter handle.
///
/// Cloning is cheap (an `Arc` bump); all clones observe the same value.
/// Obtain named instances through [`crate::Recorder::counter`].
#[derive(Clone)]
pub struct Counter(pub(crate) Arc<CounterCell>);

impl Counter {
    /// A counter not registered in any [`crate::Registry`] (unit tests,
    /// detached defaults). Named registration via
    /// [`crate::Recorder::counter`] is the normal path.
    pub fn detached() -> Counter {
        Counter(Arc::new(CounterCell::new()))
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.shards[my_shard()].0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value: the sum over all shards.
    pub fn get(&self) -> u64 {
        self.0
            .shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }
}

impl std::fmt::Debug for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("Counter").field(&self.get()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_get() {
        let c = Counter::detached();
        assert_eq!(c.get(), 0);
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
    }

    #[test]
    fn clones_share_state() {
        let c = Counter::detached();
        let c2 = c.clone();
        c.inc();
        c2.inc();
        assert_eq!(c.get(), 2);
    }

    #[test]
    fn concurrent_increments_are_not_lost() {
        let c = Counter::detached();
        std::thread::scope(|s| {
            for _ in 0..8 {
                let c = c.clone();
                s.spawn(move || {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 80_000);
    }
}
