//! Fixed-size trace events and bounded per-thread rings.
//!
//! Each recording thread owns one ring per registry; writers never
//! contend with each other, and a full ring overwrites its oldest entry
//! (counting the drop) instead of blocking the instrumented path. Events
//! are stamped with a per-thread sequence number (`seq`, gap-free even
//! across drops) and a registry-wide logical clock (`clock`), never wall
//! time — the determinism contract of the crate docs.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// What happened. Payload meaning per kind is documented in
/// `OBSERVABILITY.md`; `a`/`b` in [`Event`] carry ids, modes, or sizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum EventKind {
    /// S-latch acquired (`a` = 1 if the acquisition blocked, `b` = rank).
    LatchAcquireS,
    /// U-latch acquired (`a` = waited, `b` = rank).
    LatchAcquireU,
    /// X-latch acquired (`a` = waited, `b` = rank).
    LatchAcquireX,
    /// U→X promotion completed (`a` = waited, `b` = rank).
    LatchPromote,
    /// A latch guard was released (`a` = mode: 0 S, 1 U, 2 X; `b` = rank).
    LatchRelease,
    /// Buffer-pool fetch served from memory (`a` = page id).
    BufHit,
    /// Buffer-pool fetch read from disk (`a` = page id).
    BufMiss,
    /// Dirty page written back during eviction (`a` = page id).
    BufEvictDirty,
    /// Dirty page written back by `flush_all` (`a` = page id).
    BufFlush,
    /// Log record appended (`a` = LSN, `b` = record-kind code).
    WalAppend,
    /// Log forced to durable storage (`a` = LSN reached, `b` = bytes).
    WalForce,
    /// Fuzzy checkpoint taken (`a` = checkpoint LSN).
    WalCheckpoint,
    /// Database lock granted (`a` = owner action id, `b` = mode code).
    LockGrant,
    /// Database lock request blocked (`a` = owner, `b` = mode code).
    LockWait,
    /// Deadlock detected; requester denied (`a` = victim action id).
    LockDeadlock,
    /// Lock wait timed out (`a` = owner action id).
    LockTimeout,
    /// Atomic action / transaction began (`a` = action id,
    /// `b` = identity code: 0 transaction, 1 separate, 2 system, 3 nested).
    ActionBegin,
    /// Atomic action committed (`a` = action id, `b` = 1 if forced).
    ActionCommit,
    /// Atomic action rolled back (`a` = action id).
    ActionAbort,
    /// SMO: node split performed (`a` = split page id, `b` = new page id).
    SmoSplit,
    /// SMO: root growth (`a` = root page id).
    SmoRootGrow,
    /// SMO: index-term posting attempt finished (`a` = described page id,
    /// `b` = outcome: 0 posted, 1 already, 2 node gone, 3 move-deferred).
    SmoPost,
    /// SMO: consolidation attempt finished (`a` = container page id,
    /// `b` = outcome: 0 done, 1 no-op).
    SmoConsolidate,
    /// Checker harness: an operation was invoked (`a` = op code `<< 56` |
    /// key, `b` = argument payload). Recorded by `pitree-check` history
    /// harnesses; the invoke/return clock interval is the real-time window
    /// the linearizability checker preserves.
    OpInvoke,
    /// Checker harness: an operation returned (`a` = op code `<< 56` | key,
    /// `b` = encoded result). Pairs with the same thread's preceding
    /// [`EventKind::OpInvoke`].
    OpReturn,
}

impl EventKind {
    /// Stable snake_case name used by the JSONL export.
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::LatchAcquireS => "latch_acquire_s",
            EventKind::LatchAcquireU => "latch_acquire_u",
            EventKind::LatchAcquireX => "latch_acquire_x",
            EventKind::LatchPromote => "latch_promote",
            EventKind::LatchRelease => "latch_release",
            EventKind::BufHit => "buf_hit",
            EventKind::BufMiss => "buf_miss",
            EventKind::BufEvictDirty => "buf_evict_dirty",
            EventKind::BufFlush => "buf_flush",
            EventKind::WalAppend => "wal_append",
            EventKind::WalForce => "wal_force",
            EventKind::WalCheckpoint => "wal_checkpoint",
            EventKind::LockGrant => "lock_grant",
            EventKind::LockWait => "lock_wait",
            EventKind::LockDeadlock => "lock_deadlock",
            EventKind::LockTimeout => "lock_timeout",
            EventKind::ActionBegin => "action_begin",
            EventKind::ActionCommit => "action_commit",
            EventKind::ActionAbort => "action_abort",
            EventKind::SmoSplit => "smo_split",
            EventKind::SmoRootGrow => "smo_root_grow",
            EventKind::SmoPost => "smo_post",
            EventKind::SmoConsolidate => "smo_consolidate",
            EventKind::OpInvoke => "op_invoke",
            EventKind::OpReturn => "op_return",
        }
    }
}

/// One fixed-size trace record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Registry-wide logical timestamp (allocation order across threads).
    pub clock: u64,
    /// Per-thread emission index; gap-free even when the ring drops.
    pub seq: u64,
    /// Registry-local thread index (assigned on first event).
    pub tid: u32,
    /// What happened.
    pub kind: EventKind,
    /// First payload word (see [`EventKind`] docs).
    pub a: u64,
    /// Second payload word.
    pub b: u64,
}

impl Event {
    /// One JSONL line for this event (no trailing newline).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"clock\":{},\"seq\":{},\"tid\":{},\"kind\":\"{}\",\"a\":{},\"b\":{}}}",
            self.clock,
            self.seq,
            self.tid,
            self.kind.name(),
            self.a,
            self.b
        )
    }
}

struct RingBuf {
    buf: Vec<Event>,
    /// Next write position once `buf` has grown to capacity.
    write: usize,
    /// Events delivered to `drain` so far (for drop accounting).
    drained: u64,
}

/// One thread's bounded event ring. The owning thread pushes; any thread
/// may drain. The mutex is effectively uncontended (one writer, rare
/// readers); the instrumented fast path is a push into a pre-allocated
/// slot.
pub(crate) struct ThreadRing {
    pub(crate) tid: u32,
    cap: usize,
    /// Total events emitted by this thread (== next `seq`).
    emitted: AtomicU64,
    state: Mutex<RingBuf>,
}

impl ThreadRing {
    pub(crate) fn new(tid: u32, cap: usize) -> ThreadRing {
        ThreadRing {
            tid,
            cap,
            emitted: AtomicU64::new(0),
            state: Mutex::new(RingBuf {
                buf: Vec::new(),
                write: 0,
                drained: 0,
            }),
        }
    }

    /// Append an event, overwriting the oldest once the ring is full.
    pub(crate) fn push(&self, clock: u64, kind: EventKind, a: u64, b: u64) {
        let seq = self.emitted.fetch_add(1, Ordering::Relaxed);
        let ev = Event {
            clock,
            seq,
            tid: self.tid,
            kind,
            a,
            b,
        };
        let mut st = self.state.lock().unwrap();
        if st.buf.len() < self.cap {
            st.buf.push(ev);
        } else {
            let w = st.write;
            st.buf[w] = ev;
        }
        st.write = (st.write + 1) % self.cap;
    }

    /// Remove and return the buffered events in emission order.
    pub(crate) fn drain(&self) -> Vec<Event> {
        let mut st = self.state.lock().unwrap();
        let out = if st.buf.len() < self.cap {
            std::mem::take(&mut st.buf)
        } else {
            let w = st.write;
            let mut v = Vec::with_capacity(self.cap);
            v.extend_from_slice(&st.buf[w..]);
            v.extend_from_slice(&st.buf[..w]);
            st.buf.clear();
            v
        };
        st.write = 0;
        st.drained += out.len() as u64;
        out
    }

    /// Total events this thread has emitted (including dropped ones).
    pub(crate) fn emitted(&self) -> u64 {
        self.emitted.load(Ordering::Relaxed)
    }

    /// Events currently buffered (not yet drained, not dropped).
    pub(crate) fn buffered_len(&self) -> usize {
        self.state.lock().unwrap().buf.len()
    }

    /// Events lost to ring wraparound so far.
    pub(crate) fn dropped(&self) -> u64 {
        let st = self.state.lock().unwrap();
        self.emitted() - st.drained - st.buf.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_drain_in_order() {
        let r = ThreadRing::new(0, 8);
        for i in 0..5 {
            r.push(i, EventKind::BufHit, i, 0);
        }
        let evs = r.drain();
        assert_eq!(evs.len(), 5);
        for (i, e) in evs.iter().enumerate() {
            assert_eq!(e.seq, i as u64);
            assert_eq!(e.clock, i as u64);
        }
        assert_eq!(r.dropped(), 0);
    }

    #[test]
    fn wraparound_drops_oldest_and_keeps_seq_gap_free() {
        let r = ThreadRing::new(3, 4);
        for i in 0..10u64 {
            r.push(i, EventKind::BufMiss, i, 0);
        }
        let evs = r.drain();
        assert_eq!(evs.len(), 4, "bounded at capacity");
        // The newest 4 survive, in order, with their original seqnos.
        let seqs: Vec<u64> = evs.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9]);
        assert!(evs.iter().all(|e| e.tid == 3));
        assert_eq!(r.emitted(), 10);
        assert_eq!(r.dropped(), 6);
    }

    #[test]
    fn drain_resets_ring_but_not_seq() {
        let r = ThreadRing::new(0, 4);
        for i in 0..6u64 {
            r.push(i, EventKind::BufHit, 0, 0);
        }
        let first = r.drain();
        assert_eq!(first.last().unwrap().seq, 5);
        r.push(6, EventKind::BufHit, 0, 0);
        let second = r.drain();
        assert_eq!(second.len(), 1);
        assert_eq!(second[0].seq, 6, "seq continues across drains");
    }

    #[test]
    fn json_shape_is_stable() {
        let e = Event {
            clock: 7,
            seq: 3,
            tid: 1,
            kind: EventKind::WalAppend,
            a: 42,
            b: 4,
        };
        assert_eq!(
            e.to_json(),
            "{\"clock\":7,\"seq\":3,\"tid\":1,\"kind\":\"wal_append\",\"a\":42,\"b\":4}"
        );
    }
}
