//! The TSB-tree engine: versioned puts, as-of reads, and the Π-tree
//! protocol (decomposed atomic actions, lazy posting) over (key × time)
//! space.
//!
//! The TSB-tree runs under the CNS invariant — nodes are never consolidated,
//! and "historical nodes never split again" (§2.2.2) — so traversal holds
//! one latch at a time and saved state needs no verification. Record undo is
//! logical (a version is removed wherever structure changes have taken it),
//! which per §6 lets every split run as an independent atomic action.

use crate::node::{
    find_version_probe, split_version_key, version_entry, version_key, version_value, Time,
    TsbHeader, TsbHeaderRef,
};
use pitree::completion::{Completion, CompletionQueue};
use pitree::node::{BoundRef, Guarded, IndexTerm};
use pitree::stats::TreeStats;
use pitree::store::Store;
use pitree::traverse::{PathEntry, SavedPath};
use pitree_pagestore::buffer::PinnedPage;
use pitree_pagestore::page::{Page, PageType};
use pitree_pagestore::{PageId, PageOp, StoreError, StoreResult};
use pitree_txnlock::{LockError, LockMode, LockName, Txn};
use pitree_wal::ActionIdentity;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Magic for TSB registry records on the meta page.
const TSB_META_MAGIC: u32 = 0x5453_4254; // "TSBT"

/// TSB-tree tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct TsbConfig {
    /// Cap on version entries per data node.
    pub max_leaf_entries: usize,
    /// Cap on index terms per index node.
    pub max_index_entries: usize,
    /// Run completions inline after operations.
    pub auto_complete: bool,
    /// Recovery identity of SMO atomic actions.
    pub smo_identity: ActionIdentity,
}

impl Default for TsbConfig {
    fn default() -> Self {
        TsbConfig {
            max_leaf_entries: usize::MAX,
            max_index_entries: usize::MAX,
            auto_complete: true,
            smo_identity: ActionIdentity::SystemTransaction,
        }
    }
}

impl TsbConfig {
    /// Small nodes for deep test trees.
    pub fn small_nodes(leaf: usize, index: usize) -> TsbConfig {
        TsbConfig {
            max_leaf_entries: leaf,
            max_index_entries: index,
            ..Default::default()
        }
    }
}

/// A Time-Split B-tree over a shared [`Store`].
pub struct TsbTree {
    store: Arc<Store>,
    cfg: TsbConfig,
    tree_id: u32,
    root: PageId,
    pub(crate) completions: Arc<CompletionQueue>,
    pub(crate) stats: Arc<TreeStats>,
    clock: AtomicU64,
}

impl std::fmt::Debug for TsbTree {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TsbTree").finish_non_exhaustive()
    }
}

/// Outcome of a descent to a data node. The header is not materialized —
/// consumers derive a [`TsbHeaderRef`] view (or decode [`TsbHeader`] on
/// write paths) from the guard.
pub(crate) struct TsbDescent<'a> {
    pub page: PinnedPage<'a>,
    pub guard: Guarded<'a>,
    pub path: SavedPath,
}

impl TsbTree {
    /// Create a new TSB-tree with a fixed root, registered on the meta page.
    pub fn create(store: Arc<Store>, tree_id: u32, cfg: TsbConfig) -> StoreResult<TsbTree> {
        let mut act = store.txns.begin(ActionIdentity::Transaction);
        let root = {
            let mut alloc = store.space.lock_alloc();
            let (root, bm_pid, bit) = alloc.find_free(&store.pool)?;
            let bm = store.pool.fetch(bm_pid)?;
            let mut bmg = bm.x();
            act.apply(&bm, &mut bmg, PageOp::SetBit { bit })?;
            root
        };
        {
            let page = store.pool.fetch_or_create(root, PageType::Free)?;
            let mut g = page.x();
            act.apply(&page, &mut g, PageOp::Format { ty: PageType::Node })?;
            act.apply(
                &page,
                &mut g,
                PageOp::InsertSlot {
                    slot: 0,
                    bytes: TsbHeader::new_root_leaf().encode(),
                },
            )?;
        }
        {
            let meta = store.pool.fetch(PageId(0))?;
            let mut g = meta.x();
            let slot = g.slot_count();
            let mut rec = Vec::with_capacity(16);
            rec.extend_from_slice(&TSB_META_MAGIC.to_le_bytes());
            rec.extend_from_slice(&tree_id.to_le_bytes());
            rec.extend_from_slice(&root.0.to_le_bytes());
            act.apply(&meta, &mut g, PageOp::InsertSlot { slot, bytes: rec })?;
        }
        act.commit()?;
        let stats = Arc::new(TreeStats::new(store.recorder()));
        Ok(TsbTree {
            store,
            cfg,
            tree_id,
            root,
            completions: Arc::new(CompletionQueue::default()),
            stats,
            clock: AtomicU64::new(0),
        })
    }

    /// Open an existing TSB-tree, restoring the logical clock from the
    /// newest version reachable on the current data chain.
    pub fn open(store: Arc<Store>, tree_id: u32, cfg: TsbConfig) -> StoreResult<TsbTree> {
        let root = {
            let meta = store.pool.fetch(PageId(0))?;
            let g = meta.s();
            let mut found = None;
            for slot in 1..g.slot_count() {
                let rec = g.get(slot)?;
                if rec.len() == 16
                    && u32::from_le_bytes(rec[0..4].try_into().unwrap()) == TSB_META_MAGIC
                    && u32::from_le_bytes(rec[4..8].try_into().unwrap()) == tree_id
                {
                    found = Some(PageId(u64::from_le_bytes(rec[8..16].try_into().unwrap())));
                    break;
                }
            }
            found
                .ok_or_else(|| StoreError::Corrupt(format!("TSB tree {tree_id} not registered")))?
        };
        let stats = Arc::new(TreeStats::new(store.recorder()));
        let tree = TsbTree {
            store,
            cfg,
            tree_id,
            root,
            completions: Arc::new(CompletionQueue::default()),
            stats,
            clock: AtomicU64::new(0),
        };
        tree.clock.store(tree.max_time_on_disk()?, Ordering::SeqCst);
        Ok(tree)
    }

    /// Open + run full crash recovery (redo, then logical undo through this
    /// tree's handler).
    pub fn recover(
        store: Arc<Store>,
        tree_id: u32,
        cfg: TsbConfig,
    ) -> StoreResult<(TsbTree, pitree_wal::RecoveryStats)> {
        let handler = crate::undo::TsbDeferredHandler::new(Arc::clone(&store), tree_id, cfg);
        let stats = pitree_wal::recover(&store.pool, &store.log, Some(&handler))?;
        let tree = TsbTree::open(store, tree_id, cfg)?;
        Ok((tree, stats))
    }

    fn max_time_on_disk(&self) -> StoreResult<Time> {
        // Walk the level-0 current chain and take the newest version start.
        let mut max_t = 0;
        let mut cur = self.leftmost_leaf()?;
        loop {
            let pin = self.store.pool.fetch(cur)?;
            let g = pin.s();
            let hdr = TsbHeader::read(&g)?;
            for slot in 1..g.slot_count() {
                let (_, t) = split_version_key(Page::entry_key(g.get(slot)?));
                max_t = max_t.max(t);
            }
            max_t = max_t.max(hdr.t_lo);
            if !hdr.key_side.is_valid() {
                break;
            }
            cur = hdr.key_side;
        }
        Ok(max_t)
    }

    fn leftmost_leaf(&self) -> StoreResult<PageId> {
        let mut cur = self.root;
        loop {
            let pin = self.store.pool.fetch(cur)?;
            let g = pin.s();
            let hdr = TsbHeader::read(&g)?;
            if hdr.level == 0 {
                return Ok(cur);
            }
            cur = IndexTerm::read(&g, 1)?.child;
        }
    }

    // ---- accessors -----------------------------------------------------------

    /// The underlying store.
    pub fn store(&self) -> &Arc<Store> {
        &self.store
    }

    /// The configuration.
    pub fn config(&self) -> &TsbConfig {
        &self.cfg
    }

    /// The fixed root page.
    pub fn root_pid(&self) -> PageId {
        self.root
    }

    /// Operation counters (shared with the Π-tree stats type).
    pub fn stats(&self) -> &TreeStats {
        &self.stats
    }

    /// Pending completions.
    pub fn completions(&self) -> &CompletionQueue {
        &self.completions
    }

    /// The logical clock's current value (last issued timestamp).
    pub fn now(&self) -> Time {
        self.clock.load(Ordering::SeqCst)
    }

    /// Begin a user transaction.
    pub fn begin(&self) -> Txn<'_> {
        self.store.txns.begin(ActionIdentity::Transaction)
    }

    /// Lock name of a record key.
    pub fn key_lock(&self, key: &[u8]) -> LockName {
        let mut name = Vec::with_capacity(4 + key.len());
        name.extend_from_slice(&self.tree_id.to_le_bytes());
        name.extend_from_slice(key);
        LockName::Key(name)
    }

    // ---- traversal -------------------------------------------------------------

    /// Descend by `key` to the node at `target_level` directly containing
    /// it, following key side pointers (and scheduling postings for the
    /// splits they reveal, §5.1). CNS: one latch at a time.
    pub(crate) fn descend(
        &self,
        key: &[u8],
        target_level: u8,
        update_at_target: bool,
        schedule: bool,
    ) -> StoreResult<TsbDescent<'_>> {
        // Every per-hop decision reads the header through a borrowed
        // TsbHeaderRef under a scoped borrow of the latch guard — the
        // descent itself never allocates (DESIGN.md §11).
        enum Step {
            Arrived,
            Side(PageId),
            Child {
                child: PageId,
                lsn: pitree_pagestore::Lsn,
            },
        }
        let pool = &self.store.pool;
        let mut path = SavedPath::default();
        let mut cur = pool.fetch(self.root)?;
        let mut g = if update_at_target {
            // The root might itself be the target.
            let peek = Guarded::S(cur.s());
            let lvl = TsbHeaderRef::read(peek.page())?.level();
            if lvl == target_level {
                drop(peek);
                Guarded::U(cur.u())
            } else {
                peek
            }
        } else {
            Guarded::S(cur.s())
        };
        let mut level = TsbHeaderRef::read(g.page())?.level();
        if level < target_level {
            return Err(StoreError::Corrupt(format!(
                "TSB descend target {target_level} above root level {level}"
            )));
        }
        loop {
            let step = {
                let h = TsbHeaderRef::read(g.page())?;
                level = h.level();
                if !h.contains_key(key) {
                    if !h.key_high_gt(key) {
                        let side = h.key_side();
                        if !side.is_valid() {
                            return Err(StoreError::Corrupt(format!(
                                "TSB node {} lacks key side pointer for {key:02x?}",
                                cur.id()
                            )));
                        }
                        Step::Side(side)
                    } else {
                        return Err(StoreError::Corrupt(format!(
                            "TSB routing went past key {key:02x?} (low {:?})",
                            h.key_low()
                        )));
                    }
                } else if level == target_level {
                    Step::Arrived
                } else {
                    let slot = g.page().keyed_floor(key)?.ok_or_else(|| {
                        StoreError::Corrupt(format!("TSB index node {} unroutable", cur.id()))
                    })?;
                    Step::Child {
                        child: IndexTerm::child_at(g.page(), slot)?,
                        lsn: g.page().lsn(),
                    }
                }
            };
            match step {
                Step::Arrived => {
                    return Ok(TsbDescent {
                        page: cur,
                        guard: g,
                        path,
                    });
                }
                Step::Side(side) => {
                    drop(g); // CNS: one latch at a time
                    let sib = pool.fetch(side)?;
                    let want_u = update_at_target && level == target_level;
                    let sg = if want_u {
                        Guarded::U(sib.u())
                    } else {
                        Guarded::S(sib.s())
                    };
                    TreeStats::bump(&self.stats.side_traversals);
                    if schedule {
                        let sh = TsbHeaderRef::read(sg.page())?;
                        let k = sh.low_entry_key().to_vec();
                        if self.completions.push(Completion::Post {
                            level: sh.level() + 1,
                            key: k,
                            node: side,
                            path: Box::new(path.clone()),
                        }) {
                            TreeStats::bump(&self.stats.postings_scheduled);
                        }
                    }
                    cur = sib;
                    g = sg;
                }
                Step::Child { child, lsn } => {
                    path.push(PathEntry {
                        pid: cur.id(),
                        lsn,
                        level,
                    });
                    drop(g); // CNS
                    let cp = pool.fetch(child)?;
                    let want_u = update_at_target && level - 1 == target_level;
                    let cg = if want_u {
                        Guarded::U(cp.u())
                    } else {
                        Guarded::S(cp.s())
                    };
                    cur = cp;
                    g = cg;
                }
            }
        }
    }

    // ---- reads -----------------------------------------------------------------

    /// Current value of `key`, if any (tombstones read as absent).
    pub fn get_current(&self, key: &[u8]) -> StoreResult<Option<Vec<u8>>> {
        self.get_as_of(key, Time::MAX - 1)
    }

    /// Value of `key` as of time `t`: follows history side pointers back
    /// through time (Figure 1). A node covering `t` that holds no version of
    /// `key` defers further back — the key may predate the node's interval
    /// (or a rolled-back alive-at-split copy may have been compensated
    /// away), in which case its governing version lives down the chain.
    pub fn get_as_of(&self, key: &[u8], t: Time) -> StoreResult<Option<Vec<u8>>> {
        let d = self.descend(key, 0, false, true)?;
        let pool = &self.store.pool;
        let mut pin = d.page;
        let mut g = d.guard;
        let out = loop {
            // One borrowed header view per chain hop; the winning version's
            // payload is borrowed straight from the frame, so the only
            // allocation is the returned value.
            let hist = {
                let page = g.page();
                let h = TsbHeaderRef::read(page)?;
                if t >= h.t_lo() {
                    if let Some((_, payload)) = find_version_probe(page, key, t) {
                        break version_value(payload).map(|v| v.to_vec());
                    }
                }
                h.hist_side()
            };
            if !hist.is_valid() {
                break None; // before recorded history
            }
            drop(g); // history nodes are immortal; no coupling needed
            let hpin = pool.fetch(hist)?;
            let hg = Guarded::S(hpin.s());
            pin = hpin;
            g = hg;
        };
        drop(g);
        drop(pin);
        self.maybe_autocomplete()?;
        Ok(out)
    }

    /// All versions of `key`, oldest first, as `(start time, value)` with
    /// `None` for tombstones. Alive-at-split copies are deduplicated.
    pub fn history(&self, key: &[u8]) -> StoreResult<Vec<(Time, Option<Vec<u8>>)>> {
        let d = self.descend(key, 0, false, true)?;
        let pool = &self.store.pool;
        let mut versions = std::collections::BTreeMap::new();
        let mut pin = d.page;
        let mut g = d.guard;
        loop {
            let page = g.page();
            for slot in 1..page.slot_count() {
                let e = page.get(slot)?;
                let (k, t) = split_version_key(Page::entry_key(e));
                if k == key {
                    versions.entry(t).or_insert_with(|| {
                        version_value(Page::entry_payload(e)).map(|v| v.to_vec())
                    });
                }
            }
            let hist = TsbHeaderRef::read(page)?.hist_side();
            if !hist.is_valid() {
                break;
            }
            drop(g);
            let hpin = pool.fetch(hist)?;
            g = Guarded::S(hpin.s());
            pin = hpin;
        }
        drop(g);
        drop(pin);
        self.maybe_autocomplete()?;
        Ok(versions.into_iter().collect())
    }

    /// Latch-only snapshot scan: all keys alive at time `t` in `[from, to)`.
    pub fn scan_as_of(
        &self,
        from: &[u8],
        to: &[u8],
        t: Time,
    ) -> StoreResult<Vec<(Vec<u8>, Vec<u8>)>> {
        let mut out = Vec::new();
        let mut cur_key = from.to_vec();
        loop {
            let d = self.descend(&cur_key, 0, false, false)?;
            // Collect alive keys in this current node's key range.
            let keys: Vec<Vec<u8>> = {
                let page = d.guard.page();
                let mut ks = Vec::new();
                for slot in 1..page.slot_count() {
                    let (k, _) = split_version_key(Page::entry_key(page.get(slot)?));
                    if k >= cur_key.as_slice()
                        && k < to
                        && ks.last().map(|l: &Vec<u8>| l.as_slice()) != Some(k)
                    {
                        ks.push(k.to_vec());
                    }
                }
                ks
            };
            let next_low = {
                let h = TsbHeaderRef::read(d.guard.page())?;
                match h.key_high() {
                    BoundRef::Key(hk) if hk < to => Some(hk.to_vec()),
                    _ => None,
                }
            };
            drop(d);
            for k in keys {
                if let Some(v) = self.get_as_of(&k, t)? {
                    out.push((k, v));
                }
            }
            match next_low {
                Some(h) => cur_key = h,
                None => break,
            }
        }
        out.sort();
        out.dedup();
        Ok(out)
    }

    // ---- writes ----------------------------------------------------------------

    /// Write a new version of `key`. Returns its timestamp.
    pub fn put(&self, txn: &mut Txn<'_>, key: &[u8], value: &[u8]) -> StoreResult<Time> {
        self.write_version(txn, key, Some(value))
    }

    /// Logically delete `key` by writing a tombstone version. Returns its
    /// timestamp.
    pub fn delete(&self, txn: &mut Txn<'_>, key: &[u8]) -> StoreResult<Time> {
        self.write_version(txn, key, None)
    }

    fn write_version(
        &self,
        txn: &mut Txn<'_>,
        key: &[u8],
        value: Option<&[u8]>,
    ) -> StoreResult<Time> {
        let name = self.key_lock(key);
        loop {
            let d = self.descend(key, 0, true, true)?;
            match txn.try_lock(&name, LockMode::X) {
                Ok(()) => {}
                Err(LockError::WouldBlock) => {
                    drop(d);
                    TreeStats::bump(&self.stats.no_wait_restarts);
                    txn.lock(&name, LockMode::X).map_err(lock_err)?;
                    continue;
                }
                Err(e) => return Err(lock_err(e)),
            }
            let t = self.clock.fetch_add(1, Ordering::SeqCst) + 1;
            let entry = version_entry(key, t, value);
            if d.guard.page().entry_count() as usize >= self.cfg.max_leaf_entries
                || d.guard.page().free_space() < entry.len() + 4
            {
                crate::split::split_data_node(self, d)?;
                continue;
            }
            let mut g = d.guard.promote().into_x();
            txn.apply_logical(
                &d.page,
                &mut g,
                PageOp::KeyedInsert { bytes: entry },
                crate::undo::TAG_TSB_REMOVE_VERSION,
                version_key(key, t),
            )?;
            drop(g);
            drop(d.page);
            self.maybe_autocomplete()?;
            return Ok(t);
        }
    }

    // ---- maintenance -------------------------------------------------------------

    /// Drain one batch of pending completions (index-term postings).
    pub fn run_completions(&self) -> StoreResult<usize> {
        let mut done = 0;
        let batch = self.completions.len();
        for _ in 0..batch {
            let Some(c) = self.completions.pop() else {
                break;
            };
            match c {
                Completion::Post {
                    level,
                    key,
                    node,
                    path,
                } => {
                    crate::split::post_index_term(self, level, &key, node, &path)?;
                }
                Completion::Consolidate { .. } => {} // TSB never consolidates
            }
            done += 1;
        }
        Ok(done)
    }

    pub(crate) fn maybe_autocomplete(&self) -> StoreResult<()> {
        if self.cfg.auto_complete && !self.completions.is_empty() {
            self.run_completions()?;
        }
        Ok(())
    }

    /// Structural validation; see [`crate::wellformed`].
    pub fn validate(&self) -> StoreResult<crate::wellformed::TsbReport> {
        crate::wellformed::check(self)
    }
}

pub(crate) fn lock_err(e: LockError) -> StoreError {
    match e {
        LockError::Deadlock => StoreError::LockFailed { deadlock: true },
        LockError::Timeout => StoreError::LockFailed { deadlock: false },
        LockError::WouldBlock => StoreError::Corrupt("WouldBlock escaped retry loop".into()),
    }
}
