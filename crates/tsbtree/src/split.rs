//! TSB-tree structure changes: time splits, key splits, index posting —
//! each an independent atomic action, per the Π-tree protocol.
//!
//! Figure 1's rules, implemented literally:
//! * **time split** — a new *historic* node receives every version that
//!   started before the split time `T`, *including copies* of the versions
//!   alive at `T` (which also stay in the current node) and a copy of the
//!   old history pointer. The current node keeps only versions alive at `T`
//!   and points its history sibling at the new node.
//! * **key split** — a new *current* node receives the upper key range with
//!   all its versions, a copy of the key side pointer, **and a copy of the
//!   history sibling pointer**, making it "responsible for not merely its
//!   current key space, but for the entire history of this key space".
//!   Only key splits post index terms.

use crate::node::{split_version_key, version_key, Time, TsbHeader, TsbKind};
use crate::tree::{TsbDescent, TsbTree};
use pitree::bound::KeyBound;
use pitree::completion::Completion;
use pitree::node::{Guarded, IndexTerm};
use pitree::stats::TreeStats;
use pitree::traverse::SavedPath;
use pitree_pagestore::buffer::PinnedPage;
use pitree_pagestore::latch::XGuard;
use pitree_pagestore::page::{Page, PageType};
use pitree_pagestore::{PageId, PageOp, StoreError, StoreResult};
use pitree_txnlock::Txn;

/// Allocate a page through `chain` (logged space-map bit).
fn alloc_page<'a>(tree: &'a TsbTree, chain: &mut Txn<'_>) -> StoreResult<PinnedPage<'a>> {
    let store = tree.store();
    let pid = {
        let mut alloc = store.space.lock_alloc();
        let (pid, bm_pid, bit) = alloc.find_free(&store.pool)?;
        let bm = store.pool.fetch(bm_pid)?;
        let mut bmg = bm.x();
        chain.apply(&bm, &mut bmg, PageOp::SetBit { bit })?;
        pid
    };
    store.pool.fetch_or_create(pid, PageType::Free)
}

/// Split a full *current data node*, choosing between a time split and a key
/// split (TSB heuristic: mostly-historical content → time split). One
/// independent atomic action; the caller retries its insert afterwards.
pub(crate) fn split_data_node(tree: &TsbTree, d: TsbDescent<'_>) -> StoreResult<()> {
    let hdr = TsbHeader::read(d.guard.page())?;
    debug_assert_eq!(hdr.kind, TsbKind::Current);
    let path = d.path.clone();
    let mut g = d.guard.promote().into_x();

    // Count distinct keys vs versions to pick the split dimension.
    let n = g.entry_count() as usize;
    let mut distinct = 0usize;
    let mut prev: Option<Vec<u8>> = None;
    for slot in 1..g.slot_count() {
        let (k, _) = split_version_key(Page::entry_key(g.get(slot)?));
        if prev.as_deref() != Some(k) {
            distinct += 1;
            prev = Some(k.to_vec());
        }
    }

    let mut act = tree.store().txns.begin(tree.config().smo_identity);
    if distinct * 2 <= n && distinct < n {
        // Mostly historical versions: time split.
        time_split(tree, &mut act, &d.page, &mut g, &hdr)?;
        drop(g);
        drop(d.page);
        act.commit()?;
        TreeStats::bump(&tree.stats().splits_independent);
        return Ok(());
    }
    // Key split. Needs at least two distinct keys; a node full of versions
    // of one key falls back to a time split.
    if distinct < 2 {
        time_split(tree, &mut act, &d.page, &mut g, &hdr)?;
        drop(g);
        drop(d.page);
        act.commit()?;
        TreeStats::bump(&tree.stats().splits_independent);
        return Ok(());
    }
    let out = key_split(tree, &mut act, &d.page, &mut g, &hdr)?;
    drop(g);
    drop(d.page);
    act.commit()?;
    TreeStats::bump(&tree.stats().splits_independent);
    if let Some((split_key, new_pid)) = out {
        if tree.completions().push(Completion::Post {
            level: 1,
            key: split_key,
            node: new_pid,
            path: Box::new(path.above(0)),
        }) {
            TreeStats::bump(&tree.stats().postings_scheduled);
        }
    }
    Ok(())
}

/// Time split at `T = now + 1`: all existing versions started before `T`.
fn time_split(
    tree: &TsbTree,
    act: &mut Txn<'_>,
    page: &PinnedPage<'_>,
    g: &mut XGuard<'_, Page>,
    hdr: &TsbHeader,
) -> StoreResult<()> {
    let t_split: Time = tree.now() + 1;
    let hist_pin = alloc_page(tree, act)?;
    let hist_pid = hist_pin.id();
    let mut hg = hist_pin.x();
    act.apply(&hist_pin, &mut hg, PageOp::Format { ty: PageType::Node })?;
    let hist_hdr = TsbHeader {
        kind: TsbKind::History,
        level: 0,
        key_low: hdr.key_low.clone(),
        key_high: hdr.key_high.clone(),
        key_side: PageId::INVALID,
        // The new historic node contains a copy of the prior history
        // sibling pointer (Figure 1).
        hist_side: hdr.hist_side,
        t_lo: hdr.t_lo,
        t_hi: t_split,
    };
    act.apply(
        &hist_pin,
        &mut hg,
        PageOp::InsertSlot {
            slot: 0,
            bytes: hist_hdr.encode(),
        },
    )?;

    // Copy everything (all versions started before T).
    let all: Vec<Vec<u8>> = (1..g.slot_count())
        .map(|s| g.get(s).map(|e| e.to_vec()))
        .collect::<StoreResult<_>>()?;
    for e in &all {
        act.apply(&hist_pin, &mut hg, PageOp::KeyedInsert { bytes: e.clone() })?;
    }
    // Remove from the current node every version that is dead at T (has a
    // successor version of the same key). The alive-at-T versions remain —
    // they now exist in both nodes, which is what makes as-of queries in
    // either rectangle self-contained.
    let mut dead: Vec<Vec<u8>> = Vec::new();
    for w in all.windows(2) {
        let (k0, _) = split_version_key(Page::entry_key(&w[0]));
        let (k1, _) = split_version_key(Page::entry_key(&w[1]));
        if k0 == k1 {
            dead.push(Page::entry_key(&w[0]).to_vec());
        }
    }
    for k in &dead {
        act.apply(page, g, PageOp::KeyedRemove { key: k.clone() })?;
    }
    let new_hdr = TsbHeader {
        hist_side: hist_pid,
        t_lo: t_split,
        ..hdr.clone()
    };
    act.apply(
        page,
        g,
        PageOp::UpdateSlot {
            slot: 0,
            bytes: new_hdr.encode(),
        },
    )?;
    TreeStats::bump(&tree.stats().splits);
    Ok(())
}

/// Key split at a user-key boundary near the middle. Returns the split key
/// and new node for index posting, or `None` when the node was the root and
/// the posting happened inline via root growth.
fn key_split(
    tree: &TsbTree,
    act: &mut Txn<'_>,
    page: &PinnedPage<'_>,
    g: &mut XGuard<'_, Page>,
    hdr: &TsbHeader,
) -> StoreResult<Option<(Vec<u8>, PageId)>> {
    if page.id() == tree.root_pid() {
        grow_root(tree, act, page, g)?;
        return Ok(None);
    }
    let n = g.entry_count();
    // Find the start of the middle entry's key group; when the middle entry
    // belongs to the first key group (one key dominating the node), fall
    // forward to the next group so both halves stay non-empty.
    let mut mid_key = {
        let (k, _) = split_version_key(Page::entry_key(g.get(1 + n / 2)?));
        k.to_vec()
    };
    let mut first_slot = match g.keyed_find(&version_key(&mid_key, 0))? {
        Ok(s) => s,
        Err(s) => s,
    };
    if first_slot <= 1 {
        let mut s = 2;
        loop {
            let (k, _) = split_version_key(Page::entry_key(g.get(s)?));
            if k != mid_key.as_slice() {
                mid_key = k.to_vec();
                first_slot = s;
                break;
            }
            s += 1;
            if s > n {
                return Err(StoreError::Corrupt("key split with one key group".into()));
            }
        }
    }

    let new_pin = alloc_page(tree, act)?;
    let new_pid = new_pin.id();
    let mut ng = new_pin.x();
    act.apply(&new_pin, &mut ng, PageOp::Format { ty: PageType::Node })?;
    let new_hdr = TsbHeader {
        kind: TsbKind::Current,
        level: 0,
        key_low: KeyBound::Key(mid_key.clone()),
        key_high: hdr.key_high.clone(),
        // Copies of the key side pointer and the history sibling pointer
        // (Figure 1): the new current node answers for the entire history of
        // its key space.
        key_side: hdr.key_side,
        hist_side: hdr.hist_side,
        t_lo: hdr.t_lo,
        t_hi: Time::MAX,
    };
    act.apply(
        &new_pin,
        &mut ng,
        PageOp::InsertSlot {
            slot: 0,
            bytes: new_hdr.encode(),
        },
    )?;
    let moved: Vec<Vec<u8>> = (first_slot..=n)
        .map(|s| g.get(s).map(|e| e.to_vec()))
        .collect::<StoreResult<_>>()?;
    for e in &moved {
        act.apply(&new_pin, &mut ng, PageOp::KeyedInsert { bytes: e.clone() })?;
    }
    for e in &moved {
        act.apply(
            page,
            g,
            PageOp::KeyedRemove {
                key: Page::entry_key(e).to_vec(),
            },
        )?;
    }
    let old_hdr = TsbHeader {
        key_high: KeyBound::Key(mid_key.clone()),
        key_side: new_pid,
        ..hdr.clone()
    };
    act.apply(
        page,
        g,
        PageOp::UpdateSlot {
            slot: 0,
            bytes: old_hdr.encode(),
        },
    )?;
    TreeStats::bump(&tree.stats().splits);
    Ok(Some((mid_key, new_pid)))
}

/// Split a full *index node* at its middle term (plain B-link key split).
fn index_split(
    tree: &TsbTree,
    act: &mut Txn<'_>,
    page: &PinnedPage<'_>,
    g: &mut XGuard<'_, Page>,
) -> StoreResult<(Vec<u8>, PageId)> {
    let hdr = TsbHeader::read(g)?;
    let n = g.entry_count();
    let mid = 1 + n / 2;
    let split_key = Page::entry_key(g.get(mid)?).to_vec();
    let new_pin = alloc_page(tree, act)?;
    let new_pid = new_pin.id();
    let mut ng = new_pin.x();
    act.apply(&new_pin, &mut ng, PageOp::Format { ty: PageType::Node })?;
    let new_hdr = TsbHeader {
        kind: TsbKind::Index,
        level: hdr.level,
        key_low: KeyBound::Key(split_key.clone()),
        key_high: hdr.key_high.clone(),
        key_side: hdr.key_side,
        hist_side: PageId::INVALID,
        t_lo: 0,
        t_hi: Time::MAX,
    };
    act.apply(
        &new_pin,
        &mut ng,
        PageOp::InsertSlot {
            slot: 0,
            bytes: new_hdr.encode(),
        },
    )?;
    let moved: Vec<Vec<u8>> = (mid..=n)
        .map(|s| g.get(s).map(|e| e.to_vec()))
        .collect::<StoreResult<_>>()?;
    for e in &moved {
        act.apply(&new_pin, &mut ng, PageOp::KeyedInsert { bytes: e.clone() })?;
    }
    for e in &moved {
        act.apply(
            page,
            g,
            PageOp::KeyedRemove {
                key: Page::entry_key(e).to_vec(),
            },
        )?;
    }
    let old_hdr = TsbHeader {
        key_high: KeyBound::Key(split_key.clone()),
        key_side: new_pid,
        ..hdr
    };
    act.apply(
        page,
        g,
        PageOp::UpdateSlot {
            slot: 0,
            bytes: old_hdr.encode(),
        },
    )?;
    TreeStats::bump(&tree.stats().splits);
    Ok((split_key, new_pid))
}

/// Grow the tree at the fixed root: contents move to n1, n1 splits into
/// n1/n2 (by key — for a data root, at a user-key boundary), and both index
/// terms are posted to the root inline.
fn grow_root(
    tree: &TsbTree,
    act: &mut Txn<'_>,
    page: &PinnedPage<'_>,
    g: &mut XGuard<'_, Page>,
) -> StoreResult<()> {
    let hdr = TsbHeader::read(g)?;
    let n1_pin = alloc_page(tree, act)?;
    let n1_pid = n1_pin.id();
    let mut n1g = n1_pin.x();
    act.apply(&n1_pin, &mut n1g, PageOp::Format { ty: PageType::Node })?;
    let n1_hdr = TsbHeader {
        key_low: KeyBound::NegInf,
        key_high: KeyBound::PosInf,
        key_side: PageId::INVALID,
        ..hdr.clone()
    };
    act.apply(
        &n1_pin,
        &mut n1g,
        PageOp::InsertSlot {
            slot: 0,
            bytes: n1_hdr.encode(),
        },
    )?;
    let all: Vec<Vec<u8>> = (1..g.slot_count())
        .map(|s| g.get(s).map(|e| e.to_vec()))
        .collect::<StoreResult<_>>()?;
    for e in &all {
        act.apply(&n1_pin, &mut n1g, PageOp::KeyedInsert { bytes: e.clone() })?;
    }
    for e in &all {
        act.apply(
            page,
            g,
            PageOp::KeyedRemove {
                key: Page::entry_key(e).to_vec(),
            },
        )?;
    }
    let root_hdr = TsbHeader {
        kind: TsbKind::Index,
        level: hdr.level + 1,
        key_low: KeyBound::NegInf,
        key_high: KeyBound::PosInf,
        key_side: PageId::INVALID,
        hist_side: PageId::INVALID,
        t_lo: 0,
        t_hi: Time::MAX,
    };
    act.apply(
        page,
        g,
        PageOp::UpdateSlot {
            slot: 0,
            bytes: root_hdr.encode(),
        },
    )?;
    act.apply(
        page,
        g,
        PageOp::KeyedInsert {
            bytes: IndexTerm {
                key: Vec::new(),
                child: n1_pid,
                multi_parent: false,
            }
            .to_entry(),
        },
    )?;
    // Split n1 and post the pair (§5.3).
    let (split_key, n2_pid) = if n1_hdr.kind == TsbKind::Current {
        match key_split_non_root(tree, act, &n1_pin, &mut n1g)? {
            Some(pair) => pair,
            None => {
                // Could not key-split (single key group): time split instead;
                // the root keeps a single child, which is fine.
                TreeStats::bump(&tree.stats().root_grows);
                return Ok(());
            }
        }
    } else {
        index_split(tree, act, &n1_pin, &mut n1g)?
    };
    act.apply(
        page,
        g,
        PageOp::KeyedInsert {
            bytes: IndexTerm {
                key: split_key,
                child: n2_pid,
                multi_parent: false,
            }
            .to_entry(),
        },
    )?;
    TreeStats::bump(&tree.stats().root_grows);
    Ok(())
}

/// Key split for a (non-root) data node inside root growth; falls back to a
/// time split when there is a single key group.
fn key_split_non_root(
    tree: &TsbTree,
    act: &mut Txn<'_>,
    page: &PinnedPage<'_>,
    g: &mut XGuard<'_, Page>,
) -> StoreResult<Option<(Vec<u8>, PageId)>> {
    let hdr = TsbHeader::read(g)?;
    let mut distinct = 0usize;
    let mut prev: Option<Vec<u8>> = None;
    for slot in 1..g.slot_count() {
        let (k, _) = split_version_key(Page::entry_key(g.get(slot)?));
        if prev.as_deref() != Some(k) {
            distinct += 1;
            prev = Some(k.to_vec());
        }
    }
    if distinct < 2 {
        time_split(tree, act, page, g, &hdr)?;
        return Ok(None);
    }
    key_split(tree, act, page, g, &hdr)
}

/// The completing index-term posting action for TSB key splits — the §5.3
/// steps under the CNS invariant (remembered parents need no verification,
/// but the posting is still testable and idempotent).
pub(crate) fn post_index_term(
    tree: &TsbTree,
    level: u8,
    key: &[u8],
    node: PageId,
    _path: &SavedPath,
) -> StoreResult<()> {
    let stats = tree.stats();
    let mut act = tree.store().txns.begin(tree.config().smo_identity);
    let d = tree.descend(key, level, true, false)?;
    // Verify: already posted?
    if d.guard.page().keyed_find(key)?.is_ok() {
        TreeStats::bump(&stats.postings_noop);
        act.commit()?;
        return Ok(());
    }
    let mut cur_pin = d.page;
    let mut cur_guard = match d.guard {
        Guarded::U(u) => u.promote(),
        Guarded::X(x) => x,
        Guarded::S(_) => unreachable!(),
    };
    let term = IndexTerm {
        key: key.to_vec(),
        child: node,
        multi_parent: false,
    }
    .to_entry();
    loop {
        let full = cur_guard.entry_count() as usize >= tree.config().max_index_entries
            || cur_guard.free_space() < term.len() + 4;
        if !full {
            act.apply(
                &cur_pin,
                &mut cur_guard,
                PageOp::KeyedInsert {
                    bytes: term.clone(),
                },
            )?;
            break;
        }
        if cur_pin.id() == tree.root_pid() {
            grow_root(tree, &mut act, &cur_pin, &mut cur_guard)?;
            // Re-descend within the grown root: route to the child covering
            // `key` and continue the space test there.
            let child = {
                let slot = cur_guard.keyed_floor(key)?.expect("root routes everything");
                IndexTerm::read(&cur_guard, slot)?.child
            };
            let pin = tree.store().pool.fetch(child)?;
            let g = pin.x();
            cur_pin = pin;
            cur_guard = g;
            continue;
        }
        let cur_level = TsbHeader::read(&cur_guard)?.level;
        let (split_key, new_pid) = index_split(tree, &mut act, &cur_pin, &mut cur_guard)?;
        if tree.completions().push(Completion::Post {
            level: cur_level + 1,
            key: split_key.clone(),
            node: new_pid,
            path: Box::new(SavedPath::default()),
        }) {
            TreeStats::bump(&stats.postings_scheduled);
        }
        if key >= split_key.as_slice() {
            let pin = tree.store().pool.fetch(new_pid)?;
            let g = pin.x();
            cur_pin = pin;
            cur_guard = g;
        }
    }
    drop(cur_guard);
    drop(cur_pin);
    act.commit()?;
    TreeStats::bump(&stats.postings_done);
    Ok(())
}
