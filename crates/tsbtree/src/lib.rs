#![warn(missing_docs)]
//! # pitree-tsb — the Time-Split B-tree
//!
//! The TSB-tree (§2.2.2 of Lomet & Salzberg, SIGMOD 1992; full treatment in
//! their SIGMOD 1989 paper) indexes **multiple versions of key-sequenced
//! records** by key and by time, and is the paper's second Π-tree member:
//! key splits delegate key space through *key side pointers* (ordinary
//! B-link sibling terms), and time splits delegate past time through
//! *history side pointers* (Figure 1). Both are sibling terms in the Π-tree
//! sense, so the same protocol applies: splits are independent atomic
//! actions, index-term postings are separate, lazy, testable actions, and
//! crash recovery takes no special measures.
//!
//! Scope note (see DESIGN.md): index nodes route by key over *current*
//! nodes; history nodes are reached exclusively through history sibling
//! pointers, per Figure 1's mechanism. The 1989 paper's time-split index
//! nodes are not reproduced. TSB nodes are never consolidated and history
//! nodes never split (CNS invariant).

pub mod node;
pub mod split;
pub mod tree;
pub mod undo;
pub mod wellformed;

pub use node::{Time, TsbHeader, TsbKind};
pub use tree::{TsbConfig, TsbTree};
pub use undo::TAG_TSB_REMOVE_VERSION;
pub use wellformed::TsbReport;
