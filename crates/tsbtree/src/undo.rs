//! Logical undo for TSB version writes.
//!
//! Undo of `put`/`delete` removes the version `(key, t)` wherever structure
//! changes have taken it — the current node, or (after a time split) the
//! history chain, or (after a key split) a sibling. Time splits duplicate
//! alive-at-T versions, so undo removes **every** copy. The compensation is
//! testable and idempotent: absent copies are skipped.

use crate::node::{split_version_key, TsbHeader};
use crate::tree::{TsbConfig, TsbTree};
use pitree::store::Store;
use pitree_pagestore::sync::Mutex;
use pitree_pagestore::{PageOp, StoreError, StoreResult};
use pitree_wal::recovery::LogicalUndoHandler;
use pitree_wal::ActionIdentity;
use std::sync::Arc;

/// Logical-undo tag: payload is the composite version key `key ⧺ t`.
pub const TAG_TSB_REMOVE_VERSION: u8 = 16;

impl TsbTree {
    /// A handler borrowing this tree, for live-transaction rollback.
    pub fn undo_handler(&self) -> TsbUndoHandler<'_> {
        TsbUndoHandler(self)
    }

    /// Remove every copy of the version with composite key `vkey`.
    pub(crate) fn compensate_remove_version(&self, vkey: &[u8]) -> StoreResult<()> {
        let (key, _t) = split_version_key(vkey);
        let key = key.to_vec();
        // Current node first.
        {
            let d = self.descend(&key, 0, true, false)?;
            if d.guard.page().keyed_find(vkey)?.is_err() {
                // Not in the current node; walk the history chain below.
                let mut hist = TsbHeader::read(d.guard.page())?.hist_side;
                drop(d);
                while hist.is_valid() {
                    let pin = self.store().pool.fetch(hist)?;
                    let mut g = pin.x();
                    let hdr = TsbHeader::read(&g)?;
                    if g.keyed_find(vkey)?.is_ok() {
                        let mut act = self.store().txns.begin(ActionIdentity::SystemTransaction);
                        act.apply(&pin, &mut g, PageOp::KeyedRemove { key: vkey.to_vec() })?;
                        drop(g);
                        drop(pin);
                        act.commit()?;
                    } else {
                        drop(g);
                        drop(pin);
                    }
                    hist = hdr.hist_side;
                }
                return Ok(());
            }
            let mut act = self.store().txns.begin(ActionIdentity::SystemTransaction);
            let mut g = d.guard.promote().into_x();
            act.apply(&d.page, &mut g, PageOp::KeyedRemove { key: vkey.to_vec() })?;
            // Continue into the history chain — a time split may have left a
            // copy there too.
            let hist = TsbHeader::read(&g)?.hist_side;
            drop(g);
            drop(d.page);
            act.commit()?;
            let mut hist = hist;
            while hist.is_valid() {
                let pin = self.store().pool.fetch(hist)?;
                let mut g = pin.x();
                let hdr = TsbHeader::read(&g)?;
                if g.keyed_find(vkey)?.is_ok() {
                    let mut act = self.store().txns.begin(ActionIdentity::SystemTransaction);
                    act.apply(&pin, &mut g, PageOp::KeyedRemove { key: vkey.to_vec() })?;
                    drop(g);
                    drop(pin);
                    act.commit()?;
                } else {
                    drop(g);
                    drop(pin);
                }
                hist = hdr.hist_side;
            }
            Ok(())
        }
    }
}

/// [`LogicalUndoHandler`] over a live TSB-tree.
pub struct TsbUndoHandler<'a>(&'a TsbTree);

impl std::fmt::Debug for TsbUndoHandler<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TsbUndoHandler").finish_non_exhaustive()
    }
}

impl LogicalUndoHandler for TsbUndoHandler<'_> {
    fn undo(&self, tag: u8, payload: &[u8]) -> StoreResult<()> {
        match tag {
            TAG_TSB_REMOVE_VERSION => self.0.compensate_remove_version(payload),
            t => Err(StoreError::Corrupt(format!("unknown TSB undo tag {t}"))),
        }
    }
}

/// Lazily-opened handler for restart recovery.
pub struct TsbDeferredHandler {
    store: Arc<Store>,
    tree_id: u32,
    cfg: TsbConfig,
    tree: Mutex<Option<TsbTree>>,
}

impl std::fmt::Debug for TsbDeferredHandler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TsbDeferredHandler").finish_non_exhaustive()
    }
}

impl TsbDeferredHandler {
    /// Build a handler for `tree_id` over `store`.
    pub fn new(store: Arc<Store>, tree_id: u32, cfg: TsbConfig) -> TsbDeferredHandler {
        TsbDeferredHandler {
            store,
            tree_id,
            cfg,
            tree: Mutex::new(None),
        }
    }
}

impl LogicalUndoHandler for TsbDeferredHandler {
    fn undo(&self, tag: u8, payload: &[u8]) -> StoreResult<()> {
        let mut guard = self.tree.lock();
        let tree = match &mut *guard {
            Some(t) => t,
            slot => slot.insert(TsbTree::open(
                Arc::clone(&self.store),
                self.tree_id,
                self.cfg,
            )?),
        };
        match tag {
            TAG_TSB_REMOVE_VERSION => tree.compensate_remove_version(payload),
            t => Err(StoreError::Corrupt(format!("unknown TSB undo tag {t}"))),
        }
    }
}
