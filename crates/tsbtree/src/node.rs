//! TSB-tree node layout (§2.2.2, Figure 1).
//!
//! A TSB node is responsible for a rectangle of (key × time) space. A
//! **current node** covers `[key_low, key_high) × [t_lo, now)` and carries
//! two kinds of sibling terms: a *key* side pointer delegating the key space
//! at and above `key_high` (exactly the B-link sibling term), and a
//! *history* side pointer delegating the time space before `t_lo` (Figure 1:
//! "Current nodes are responsible for all previous time through their
//! historical pointers and all higher key ranges through their key (side)
//! pointers"). A **history node** covers `[key_low, key_high) × [t_lo,
//! t_hi)`, never splits again, and chains further back through its own
//! history pointer (a copy of its creator's, per Figure 1).
//!
//! Leaf entries are *versions*: entry key = `user key ⧺ 8-byte big-endian
//! start time`, payload = `[flags][value]` (bit 0 of flags marks a deletion
//! tombstone). Bytewise entry order gives a consistent total order with all
//! versions of one key contiguous and time-ascending.

use pitree::bound::KeyBound;
use pitree::node::BoundRef;
use pitree_pagestore::page::Page;
use pitree_pagestore::{PageId, StoreError, StoreResult};

/// Version timestamps (logical clock ticks).
pub type Time = u64;

/// Kind of a TSB node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum TsbKind {
    /// Mutable node covering current time.
    Current = 0,
    /// Immutable node covering a closed time interval.
    History = 1,
    /// Index node (routes by key over current nodes).
    Index = 2,
}

impl TsbKind {
    fn from_u8(b: u8) -> StoreResult<TsbKind> {
        match b {
            0 => Ok(TsbKind::Current),
            1 => Ok(TsbKind::History),
            2 => Ok(TsbKind::Index),
            x => Err(StoreError::Corrupt(format!("bad TSB node kind {x}"))),
        }
    }
}

/// Decoded TSB node header (slot 0).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TsbHeader {
    /// What this node is.
    pub kind: TsbKind,
    /// Level: 0 for data nodes, parents one higher.
    pub level: u8,
    /// Inclusive low key bound of the directly-contained key space.
    pub key_low: KeyBound,
    /// Exclusive high key bound (key-delegation boundary when `key_side` is
    /// set).
    pub key_high: KeyBound,
    /// Key sibling (current/index nodes; the B-link side pointer).
    pub key_side: PageId,
    /// History sibling: the node responsible for this key space before
    /// `t_lo` (data nodes only).
    pub hist_side: PageId,
    /// Inclusive start of the covered time interval.
    pub t_lo: Time,
    /// Exclusive end of the covered time interval (`Time::MAX` = open, for
    /// current and index nodes).
    pub t_hi: Time,
}

impl TsbHeader {
    /// Header for a brand-new root (a current data node covering all of key
    /// space and all time).
    pub fn new_root_leaf() -> TsbHeader {
        TsbHeader {
            kind: TsbKind::Current,
            level: 0,
            key_low: KeyBound::NegInf,
            key_high: KeyBound::PosInf,
            key_side: PageId::INVALID,
            hist_side: PageId::INVALID,
            t_lo: 0,
            t_hi: Time::MAX,
        }
    }

    /// Whether `key` lies in the directly-contained key space.
    pub fn contains_key(&self, key: &[u8]) -> bool {
        self.key_low.le_key(key) && self.key_high.gt_key(key)
    }

    /// Whether `t` lies in the covered time interval.
    pub fn contains_time(&self, t: Time) -> bool {
        self.t_lo <= t && t < self.t_hi
    }

    /// Encode as the slot-0 record.
    pub fn encode(&self) -> Vec<u8> {
        let mut v = Vec::with_capacity(40);
        v.push(self.kind as u8);
        v.push(self.level);
        v.extend_from_slice(&self.key_side.0.to_le_bytes());
        v.extend_from_slice(&self.hist_side.0.to_le_bytes());
        v.extend_from_slice(&self.t_lo.to_le_bytes());
        v.extend_from_slice(&self.t_hi.to_le_bytes());
        self.key_low.encode(&mut v);
        self.key_high.encode(&mut v);
        v
    }

    /// Decode from the slot-0 record.
    pub fn decode(bytes: &[u8]) -> StoreResult<TsbHeader> {
        if bytes.len() < 34 {
            return Err(StoreError::Corrupt("TSB header too short".into()));
        }
        let kind = TsbKind::from_u8(bytes[0])?;
        let level = bytes[1];
        let key_side = PageId(u64::from_le_bytes(bytes[2..10].try_into().unwrap()));
        let hist_side = PageId(u64::from_le_bytes(bytes[10..18].try_into().unwrap()));
        let t_lo = u64::from_le_bytes(bytes[18..26].try_into().unwrap());
        let t_hi = u64::from_le_bytes(bytes[26..34].try_into().unwrap());
        let mut pos = 34;
        let key_low = KeyBound::decode(bytes, &mut pos)?;
        let key_high = KeyBound::decode(bytes, &mut pos)?;
        Ok(TsbHeader {
            kind,
            level,
            key_low,
            key_high,
            key_side,
            hist_side,
            t_lo,
            t_hi,
        })
    }

    /// Read from a node page.
    pub fn read(page: &Page) -> StoreResult<TsbHeader> {
        TsbHeader::decode(page.get(0)?)
    }
}

/// Borrowed, zero-copy view of a TSB node header: scalars are read at their
/// fixed offsets, the key bounds stay as slices into the frame. The read
/// hot path (`descend`, `get_as_of`) makes every rectangle-membership
/// decision through this view without materializing a [`TsbHeader`]
/// (DESIGN.md §11). `TsbHeader::{encode,decode}` remain the write-path
/// representation.
#[derive(Debug, Clone, Copy)]
pub struct TsbHeaderRef<'a> {
    kind: TsbKind,
    level: u8,
    key_side: PageId,
    hist_side: PageId,
    t_lo: Time,
    t_hi: Time,
    key_low: BoundRef<'a>,
    key_high: BoundRef<'a>,
}

impl<'a> TsbHeaderRef<'a> {
    /// Parse slot-0 record bytes; accepts and rejects the same inputs as
    /// [`TsbHeader::decode`].
    pub fn parse(bytes: &'a [u8]) -> StoreResult<TsbHeaderRef<'a>> {
        if bytes.len() < 34 {
            return Err(StoreError::Corrupt("TSB header too short".into()));
        }
        let kind = TsbKind::from_u8(bytes[0])?;
        let level = bytes[1];
        let key_side = PageId(u64::from_le_bytes(bytes[2..10].try_into().unwrap()));
        let hist_side = PageId(u64::from_le_bytes(bytes[10..18].try_into().unwrap()));
        let t_lo = u64::from_le_bytes(bytes[18..26].try_into().unwrap());
        let t_hi = u64::from_le_bytes(bytes[26..34].try_into().unwrap());
        let mut pos = 34;
        let key_low = BoundRef::parse(bytes, &mut pos)?;
        let key_high = BoundRef::parse(bytes, &mut pos)?;
        Ok(TsbHeaderRef {
            kind,
            level,
            key_side,
            hist_side,
            t_lo,
            t_hi,
            key_low,
            key_high,
        })
    }

    /// View the header of a node page.
    #[inline]
    pub fn read(page: &'a Page) -> StoreResult<TsbHeaderRef<'a>> {
        TsbHeaderRef::parse(page.get(0)?)
    }

    /// What this node is.
    #[inline]
    pub fn kind(&self) -> TsbKind {
        self.kind
    }

    /// Level: 0 for data nodes.
    #[inline]
    pub fn level(&self) -> u8 {
        self.level
    }

    /// Key sibling (the B-link side pointer), or `PageId::INVALID`.
    #[inline]
    pub fn key_side(&self) -> PageId {
        self.key_side
    }

    /// History sibling, or `PageId::INVALID`.
    #[inline]
    pub fn hist_side(&self) -> PageId {
        self.hist_side
    }

    /// Inclusive start of the covered time interval.
    #[inline]
    pub fn t_lo(&self) -> Time {
        self.t_lo
    }

    /// Exclusive end of the covered time interval.
    #[inline]
    pub fn t_hi(&self) -> Time {
        self.t_hi
    }

    /// Inclusive low key bound.
    #[inline]
    pub fn key_low(&self) -> BoundRef<'a> {
        self.key_low
    }

    /// Exclusive high key bound.
    #[inline]
    pub fn key_high(&self) -> BoundRef<'a> {
        self.key_high
    }

    /// Whether `key` lies in the directly-contained key space.
    #[inline]
    pub fn contains_key(&self, key: &[u8]) -> bool {
        self.key_low.le_key(key) && self.key_high.gt_key(key)
    }

    /// Whether `t` lies in the covered time interval.
    #[inline]
    pub fn contains_time(&self, t: Time) -> bool {
        self.t_lo <= t && t < self.t_hi
    }

    /// `key < key_high` in place.
    #[inline]
    pub fn key_high_gt(&self, key: &[u8]) -> bool {
        self.key_high.gt_key(key)
    }

    /// The low bound as an index-term key (`NegInf` → empty key).
    #[inline]
    pub fn low_entry_key(&self) -> &'a [u8] {
        self.key_low.as_entry_key()
    }
}

// ---- version entries --------------------------------------------------------

/// Flag bit marking a deletion tombstone version.
pub const FLAG_TOMBSTONE: u8 = 0b0000_0001;

/// Build the composite entry key `user key ⧺ start time`.
pub fn version_key(key: &[u8], t: Time) -> Vec<u8> {
    let mut v = Vec::with_capacity(key.len() + 8);
    v.extend_from_slice(key);
    v.extend_from_slice(&t.to_be_bytes());
    v
}

/// Split a composite entry key back into `(user key, start time)`.
pub fn split_version_key(vkey: &[u8]) -> (&[u8], Time) {
    let n = vkey.len() - 8;
    (
        &vkey[..n],
        u64::from_be_bytes(vkey[n..].try_into().unwrap()),
    )
}

/// Build a full version entry.
pub fn version_entry(key: &[u8], t: Time, value: Option<&[u8]>) -> Vec<u8> {
    let mut payload = Vec::with_capacity(1 + value.map_or(0, |v| v.len()));
    match value {
        Some(v) => {
            payload.push(0);
            payload.extend_from_slice(v);
        }
        None => payload.push(FLAG_TOMBSTONE),
    }
    Page::make_entry(&version_key(key, t), &payload)
}

/// Decode a version entry's payload into `Some(value)` or `None` for a
/// tombstone.
pub fn version_value(payload: &[u8]) -> Option<&[u8]> {
    if payload[0] & FLAG_TOMBSTONE != 0 {
        None
    } else {
        Some(&payload[1..])
    }
}

/// Compare an entry's composite key against the conceptual probe
/// `key ⧺ t_be` without concatenating the probe: lexicographic byte order,
/// chaining from the user-key prefix into the big-endian time suffix.
#[inline]
fn cmp_version_probe(entry_key: &[u8], key: &[u8], t_be: &[u8; 8]) -> std::cmp::Ordering {
    use std::cmp::Ordering;
    let n = key.len();
    let split = entry_key.len().min(n);
    match entry_key[..split].cmp(&key[..split]) {
        Ordering::Equal => {
            if entry_key.len() <= n {
                // The entry key is a (possibly equal-length) prefix of the
                // user key; the probe continues with 8 time bytes, so the
                // entry sorts first.
                Ordering::Less
            } else {
                let rest = &entry_key[n..];
                let m = rest.len().min(8);
                match rest[..m].cmp(&t_be[..m]) {
                    Ordering::Equal => rest.len().cmp(&8),
                    o => o,
                }
            }
        }
        o => o,
    }
}

/// In-place twin of [`find_version_at`]: locate the version of `key` valid
/// at `t` and borrow its payload from the frame — no probe-key allocation,
/// no second slot decode.
pub fn find_version_probe<'a>(page: &'a Page, key: &[u8], t: Time) -> Option<(u16, &'a [u8])> {
    use std::cmp::Ordering;
    let t_be = t.to_be_bytes();
    let count = page.slot_count();
    let mut lo = 1u16;
    let mut hi = count;
    let mut exact = None;
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        match cmp_version_probe(page.entry_key_at(mid), key, &t_be) {
            Ordering::Less => lo = mid + 1,
            Ordering::Greater => hi = mid,
            Ordering::Equal => {
                exact = Some(mid);
                break;
            }
        }
    }
    let slot = match exact {
        Some(s) => s,
        None if lo > 1 => lo - 1,
        None => return None,
    };
    let ek = page.entry_key_at(slot);
    if ek.len() >= 8 && &ek[..ek.len() - 8] == key {
        Some((slot, page.entry_payload_at(slot)))
    } else {
        None
    }
}

/// Find, within a data node, the slot of the version of `key` valid at `t`
/// (the greatest start time ≤ `t`). Returns `None` if no version of `key`
/// starts at or before `t` in this node.
pub fn find_version_at(page: &Page, key: &[u8], t: Time) -> StoreResult<Option<u16>> {
    Ok(find_version_probe(page, key, t).map(|(slot, _)| slot))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pitree_pagestore::page::PageType;

    #[test]
    fn header_codec_roundtrip() {
        for h in [
            TsbHeader::new_root_leaf(),
            TsbHeader {
                kind: TsbKind::History,
                level: 0,
                key_low: KeyBound::Key(b"m".to_vec()),
                key_high: KeyBound::PosInf,
                key_side: PageId(7),
                hist_side: PageId(9),
                t_lo: 100,
                t_hi: 200,
            },
            TsbHeader {
                kind: TsbKind::Index,
                level: 2,
                key_low: KeyBound::NegInf,
                key_high: KeyBound::Key(b"q".to_vec()),
                key_side: PageId(3),
                hist_side: PageId::INVALID,
                t_lo: 0,
                t_hi: Time::MAX,
            },
        ] {
            assert_eq!(TsbHeader::decode(&h.encode()).unwrap(), h);
        }
    }

    #[test]
    fn rectangle_membership() {
        let h = TsbHeader {
            kind: TsbKind::History,
            level: 0,
            key_low: KeyBound::Key(b"b".to_vec()),
            key_high: KeyBound::Key(b"m".to_vec()),
            key_side: PageId::INVALID,
            hist_side: PageId::INVALID,
            t_lo: 10,
            t_hi: 20,
        };
        assert!(h.contains_key(b"c") && !h.contains_key(b"m") && !h.contains_key(b"a"));
        assert!(h.contains_time(10) && h.contains_time(19));
        assert!(!h.contains_time(20) && !h.contains_time(9));
    }

    #[test]
    fn version_key_order_is_time_ascending_per_key() {
        let a1 = version_key(b"aa", 1);
        let a2 = version_key(b"aa", 2);
        let b1 = version_key(b"ab", 1);
        assert!(a1 < a2 && a2 < b1);
        let (k, t) = split_version_key(&a2);
        assert_eq!((k, t), (&b"aa"[..], 2));
    }

    #[test]
    fn version_entry_tombstones() {
        let live = version_entry(b"k", 5, Some(b"val"));
        assert_eq!(version_value(Page::entry_payload(&live)), Some(&b"val"[..]));
        let dead = version_entry(b"k", 6, None);
        assert_eq!(version_value(Page::entry_payload(&dead)), None);
    }

    #[test]
    fn header_ref_agrees_with_decode() {
        for h in [
            TsbHeader::new_root_leaf(),
            TsbHeader {
                kind: TsbKind::History,
                level: 0,
                key_low: KeyBound::Key(b"m".to_vec()),
                key_high: KeyBound::PosInf,
                key_side: PageId(7),
                hist_side: PageId(9),
                t_lo: 100,
                t_hi: 200,
            },
        ] {
            let bytes = h.encode();
            let v = TsbHeaderRef::parse(&bytes).unwrap();
            assert_eq!(v.kind(), h.kind);
            assert_eq!(v.level(), h.level);
            assert_eq!(v.key_side(), h.key_side);
            assert_eq!(v.hist_side(), h.hist_side);
            assert_eq!(v.t_lo(), h.t_lo);
            assert_eq!(v.t_hi(), h.t_hi);
            for key in [&b""[..], b"a", b"m", b"z"] {
                assert_eq!(v.contains_key(key), h.contains_key(key));
                assert_eq!(v.key_high_gt(key), h.key_high.gt_key(key));
            }
            for t in [0u64, 99, 100, 199, 200, Time::MAX - 1] {
                assert_eq!(v.contains_time(t), h.contains_time(t));
            }
        }
        // Rejection parity with decode.
        for bad in [&[][..], &[0, 0, 1][..], &[9; 40][..]] {
            assert_eq!(
                TsbHeaderRef::parse(bad).is_err(),
                TsbHeader::decode(bad).is_err()
            );
        }
    }

    #[test]
    fn version_probe_compare_matches_materialized_probe() {
        let keys: Vec<Vec<u8>> = vec![
            b"".to_vec(),
            b"a".to_vec(),
            b"aa".to_vec(),
            b"ab".to_vec(),
            b"b".to_vec(),
            b"zzz".to_vec(),
        ];
        for entry_user in &keys {
            for entry_t in [0u64, 1, 7, u64::MAX] {
                let ek = version_key(entry_user, entry_t);
                for probe_user in &keys {
                    for probe_t in [0u64, 1, 7, u64::MAX] {
                        let materialized = version_key(probe_user, probe_t);
                        assert_eq!(
                            cmp_version_probe(&ek, probe_user, &probe_t.to_be_bytes()),
                            ek.as_slice().cmp(&materialized),
                            "entry ({entry_user:?},{entry_t}) vs probe ({probe_user:?},{probe_t})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn find_version_probe_agrees_with_slot_lookup() {
        let mut p = Page::new(PageType::Node);
        p.insert(0, &TsbHeader::new_root_leaf().encode()).unwrap();
        for t in [10u64, 20, 30] {
            p.keyed_insert(&version_entry(b"k", t, Some(b"v"))).unwrap();
        }
        p.keyed_insert(&version_entry(b"m", 15, None)).unwrap();
        for (key, t) in [
            (&b"k"[..], 5u64),
            (b"k", 10),
            (b"k", 25),
            (b"k", 99),
            (b"m", 14),
            (b"m", 16),
            (b"", 50),
            (b"zz", 50),
        ] {
            let via_slot = find_version_at(&p, key, t).unwrap();
            let via_probe = find_version_probe(&p, key, t);
            assert_eq!(via_probe.map(|(s, _)| s), via_slot, "key {key:?} t {t}");
            if let Some((slot, payload)) = via_probe {
                assert_eq!(payload, Page::entry_payload(p.get(slot).unwrap()));
            }
        }
    }

    #[test]
    fn find_version_at_picks_floor() {
        let mut p = Page::new(PageType::Node);
        p.insert(0, &TsbHeader::new_root_leaf().encode()).unwrap();
        for t in [10u64, 20, 30] {
            p.keyed_insert(&version_entry(b"k", t, Some(b"v"))).unwrap();
        }
        p.keyed_insert(&version_entry(b"m", 15, Some(b"v")))
            .unwrap();
        let slot = find_version_at(&p, b"k", 25).unwrap().unwrap();
        let (k, t) = split_version_key(Page::entry_key(p.get(slot).unwrap()));
        assert_eq!((k, t), (&b"k"[..], 20));
        assert!(
            find_version_at(&p, b"k", 5).unwrap().is_none(),
            "before first version"
        );
        let slot = find_version_at(&p, b"k", 30).unwrap().unwrap();
        assert_eq!(
            split_version_key(Page::entry_key(p.get(slot).unwrap())).1,
            30
        );
        assert!(find_version_at(&p, b"zz", 50).unwrap().is_none());
        // A key that is a prefix of another must not match it.
        assert!(find_version_at(&p, b"", 50).unwrap().is_none());
    }
}
