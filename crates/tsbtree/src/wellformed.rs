//! TSB-tree structural validation.
//!
//! Checks, on top of the generic Π-tree invariants (§2.1.3) applied to the
//! key dimension:
//!
//! * the current data chain partitions the key space;
//! * each history chain runs backward through time-contiguous intervals
//!   (`follower.t_hi == node.t_lo`) whose key rectangles contain the
//!   referrer's;
//! * versions are sorted, inside their node's key rectangle, and a current
//!   node keeps **at most one version per key from before its `t_lo`** (the
//!   alive-at-split copy);
//! * index terms reference live current nodes responsible at the term key.

use crate::node::{split_version_key, Time, TsbHeader, TsbKind};
use crate::tree::TsbTree;
use pitree::bound::KeyBound;
use pitree::node::IndexTerm;
use pitree_pagestore::page::{Page, PageType};
use pitree_pagestore::{PageId, StoreResult};
use std::collections::HashSet;

/// The TSB checker's findings.
#[derive(Debug, Default)]
pub struct TsbReport {
    /// Current data nodes on the key chain.
    pub current_nodes: usize,
    /// History nodes reachable from current nodes.
    pub history_nodes: usize,
    /// Index nodes per level (level, count), root first.
    pub index_nodes: Vec<(u8, usize)>,
    /// Total version entries across all reachable data nodes (with
    /// alive-at-split duplicates counted once per node).
    pub versions: usize,
    /// Current nodes lacking a parent index term (intermediate states).
    pub unposted_nodes: usize,
    /// Invariant violations; empty iff well-formed.
    pub violations: Vec<String>,
}

impl TsbReport {
    /// Whether all invariants hold.
    pub fn is_well_formed(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Validate `tree` (run quiesced for exact results).
pub fn check(tree: &TsbTree) -> StoreResult<TsbReport> {
    let mut r = TsbReport::default();
    let pool = &tree.store().pool;
    let mut v = Vec::new();

    // Walk index levels from the root down to level 1, gathering posted
    // child terms per level.
    let root_hdr = {
        let pin = pool.fetch(tree.root_pid())?;
        let g = pin.s();
        TsbHeader::read(&g)?
    };
    if root_hdr.key_low != KeyBound::NegInf || root_hdr.key_high != KeyBound::PosInf {
        v.push("root does not cover the whole key space".into());
    }

    let mut first_of_level = tree.root_pid();
    let mut posted: Vec<(Vec<u8>, PageId)> = Vec::new();
    for level in (1..=root_hdr.level).rev() {
        // Find the first node of this level.
        let mut cur = first_of_level;
        loop {
            let pin = pool.fetch(cur)?;
            let g = pin.s();
            let hdr = TsbHeader::read(&g)?;
            if hdr.level == level {
                break;
            }
            cur = IndexTerm::read(&g, 1)?.child;
        }
        first_of_level = cur;
        let mut count = 0;
        let mut prev_high = KeyBound::NegInf;
        posted.clear();
        loop {
            let pin = pool.fetch(cur)?;
            let g = pin.s();
            let hdr = TsbHeader::read(&g)?;
            if hdr.kind != TsbKind::Index {
                v.push(format!("node {cur} at level {level} is not an index node"));
            }
            if count == 0 && hdr.key_low != KeyBound::NegInf {
                v.push(format!("first index node {cur} low is {}", hdr.key_low));
            }
            if count > 0 && hdr.key_low.cmp_bound(&prev_high) != std::cmp::Ordering::Equal {
                v.push(format!("index chain gap at {cur}"));
            }
            for slot in 1..g.slot_count() {
                let term = IndexTerm::read(&g, slot)?;
                posted.push((term.key.clone(), term.child));
                let cp = pool.fetch(term.child)?;
                let cg = cp.s();
                let chdr = TsbHeader::read(&cg)?;
                if chdr.level + 1 != level {
                    v.push(format!("index node {cur}: child level mismatch"));
                }
                if !term.key.is_empty() && !chdr.key_low.le_key(&term.key) {
                    v.push(format!("index node {cur}: child low above term key"));
                }
            }
            prev_high = hdr.key_high.clone();
            if !hdr.key_side.is_valid() {
                if hdr.key_high != KeyBound::PosInf {
                    v.push(format!(
                        "rightmost index node {cur} high is {}",
                        hdr.key_high
                    ));
                }
                break;
            }
            cur = hdr.key_side;
            count += 1;
        }
        r.index_nodes.push((level, count + 1));
        if level > 1 {
            // Descend for the next level's first node.
            let pin = pool.fetch(first_of_level)?;
            let g = pin.s();
            first_of_level = IndexTerm::read(&g, 1)?.child;
        } else {
            let pin = pool.fetch(first_of_level)?;
            let g = pin.s();
            first_of_level = IndexTerm::read(&g, 1)?.child;
        }
    }

    // Walk the current data chain.
    let mut cur = first_of_level;
    let mut prev_high = KeyBound::NegInf;
    let mut seen_hist: HashSet<PageId> = HashSet::new();
    loop {
        let pin = pool.fetch(cur)?;
        let g = pin.s();
        if g.page_type()? != PageType::Node {
            v.push(format!("data node {cur} has wrong page type"));
            break;
        }
        let hdr = TsbHeader::read(&g)?;
        if hdr.kind != TsbKind::Current || hdr.level != 0 {
            v.push(format!(
                "node {cur} on the current chain is not a current data node"
            ));
        }
        if r.current_nodes == 0 && hdr.key_low != KeyBound::NegInf {
            v.push(format!("first current node {cur} low is {}", hdr.key_low));
        }
        if r.current_nodes > 0 && hdr.key_low.cmp_bound(&prev_high) != std::cmp::Ordering::Equal {
            v.push(format!("current chain gap at {cur}"));
        }
        check_versions(&g, &hdr, cur, &mut r, &mut v)?;
        if root_hdr.level > 0 && hdr.key_low != KeyBound::NegInf {
            let key = hdr.key_low.as_entry_key();
            if !posted.iter().any(|(k, p)| k.as_slice() == key && *p == cur) {
                r.unposted_nodes += 1;
            }
        }
        // Walk this node's history chain.
        let mut hist = hdr.hist_side;
        let mut t_hi_expect = hdr.t_lo;
        while hist.is_valid() {
            let hp = pool.fetch(hist)?;
            let hg = hp.s();
            let hh = TsbHeader::read(&hg)?;
            if hh.kind != TsbKind::History {
                v.push(format!(
                    "history pointer from {cur} reaches non-history node {hist}"
                ));
                break;
            }
            if hh.t_hi != t_hi_expect {
                v.push(format!(
                    "history chain of {cur}: node {hist} covers ..{} but follower starts at {}",
                    hh.t_hi, t_hi_expect
                ));
            }
            // The history rectangle must contain the referrer's key space at
            // its time (it was cut from a node responsible for at least this
            // key range).
            if hh.key_low.cmp_bound(&hdr.key_low) == std::cmp::Ordering::Greater {
                v.push(format!("history node {hist} key_low above referrer's"));
            }
            if seen_hist.insert(hist) {
                r.history_nodes += 1;
                check_versions(&hg, &hh, hist, &mut r, &mut v)?;
            }
            t_hi_expect = hh.t_lo;
            hist = hh.hist_side;
        }
        r.current_nodes += 1;
        prev_high = hdr.key_high.clone();
        if !hdr.key_side.is_valid() {
            if hdr.key_high != KeyBound::PosInf {
                v.push(format!(
                    "rightmost current node {cur} high is {}",
                    hdr.key_high
                ));
            }
            break;
        }
        cur = hdr.key_side;
    }

    r.violations = v;
    Ok(r)
}

fn check_versions(
    g: &Page,
    hdr: &TsbHeader,
    pid: PageId,
    r: &mut TsbReport,
    v: &mut Vec<String>,
) -> StoreResult<()> {
    let mut prev: Option<Vec<u8>> = None;
    let mut pre_tlo_for_key: Option<(Vec<u8>, usize)> = None;
    for slot in 1..g.slot_count() {
        let e = g.get(slot)?;
        let vkey = Page::entry_key(e);
        let (k, t) = split_version_key(vkey);
        if !hdr.contains_key(k) {
            v.push(format!(
                "node {pid}: version key {k:02x?} outside rectangle"
            ));
        }
        if let Some(p) = &prev {
            if p.as_slice() >= vkey {
                v.push(format!("node {pid}: versions out of order at slot {slot}"));
            }
        }
        prev = Some(vkey.to_vec());
        let t_cap = if hdr.kind == TsbKind::History {
            hdr.t_hi
        } else {
            Time::MAX
        };
        if t >= t_cap {
            v.push(format!("node {pid}: version time {t} at/after node t_hi"));
        }
        if t < hdr.t_lo {
            // Allowed only as the single alive-at-split copy per key.
            match &mut pre_tlo_for_key {
                Some((pk, n)) if pk.as_slice() == k => {
                    *n += 1;
                    if *n > 1 {
                        v.push(format!(
                            "node {pid}: {n} pre-t_lo versions of key {k:02x?} (max 1)"
                        ));
                    }
                }
                _ => pre_tlo_for_key = Some((k.to_vec(), 1)),
            }
        }
        r.versions += 1;
    }
    Ok(())
}
