//! TSB-tree functional, structural (Figure 1), and recovery tests.

use pitree::store::CrashableStore;
use pitree_tsb::{TsbConfig, TsbHeader, TsbKind, TsbTree};
use std::sync::Arc;

fn key(i: u64) -> Vec<u8> {
    i.to_be_bytes().to_vec()
}

fn setup(cfg: TsbConfig) -> (CrashableStore, TsbTree) {
    let cs = CrashableStore::create(512, 100_000).unwrap();
    let tree = TsbTree::create(Arc::clone(&cs.store), 1, cfg).unwrap();
    (cs, tree)
}

fn put(tree: &TsbTree, k: &[u8], v: &[u8]) -> u64 {
    let mut t = tree.begin();
    let ts = tree.put(&mut t, k, v).unwrap();
    t.commit().unwrap();
    ts
}

fn del(tree: &TsbTree, k: &[u8]) -> u64 {
    let mut t = tree.begin();
    let ts = tree.delete(&mut t, k).unwrap();
    t.commit().unwrap();
    ts
}

#[test]
fn current_reads_see_latest_version() {
    let (_cs, tree) = setup(TsbConfig::default());
    put(&tree, b"k", b"v1");
    put(&tree, b"k", b"v2");
    put(&tree, b"k", b"v3");
    assert_eq!(tree.get_current(b"k").unwrap(), Some(b"v3".to_vec()));
    assert_eq!(tree.get_current(b"absent").unwrap(), None);
}

#[test]
fn as_of_reads_travel_back_in_time() {
    let (_cs, tree) = setup(TsbConfig::default());
    let t1 = put(&tree, b"k", b"v1");
    let t2 = put(&tree, b"k", b"v2");
    let t3 = del(&tree, b"k");
    let t4 = put(&tree, b"k", b"v4");
    assert_eq!(tree.get_as_of(b"k", t1).unwrap(), Some(b"v1".to_vec()));
    assert_eq!(tree.get_as_of(b"k", t2).unwrap(), Some(b"v2".to_vec()));
    assert_eq!(tree.get_as_of(b"k", t2).unwrap(), Some(b"v2".to_vec()));
    assert_eq!(
        tree.get_as_of(b"k", t3).unwrap(),
        None,
        "tombstone visible at t3"
    );
    assert_eq!(tree.get_as_of(b"k", t4).unwrap(), Some(b"v4".to_vec()));
    assert_eq!(
        tree.get_as_of(b"k", t1 - 1).unwrap(),
        None,
        "before first version"
    );
    assert_eq!(tree.get_current(b"k").unwrap(), Some(b"v4".to_vec()));
}

#[test]
fn history_lists_all_versions() {
    let (_cs, tree) = setup(TsbConfig::default());
    let t1 = put(&tree, b"k", b"a");
    let t2 = put(&tree, b"k", b"b");
    let t3 = del(&tree, b"k");
    let h = tree.history(b"k").unwrap();
    assert_eq!(
        h,
        vec![
            (t1, Some(b"a".to_vec())),
            (t2, Some(b"b".to_vec())),
            (t3, None),
        ]
    );
}

#[test]
fn time_splits_preserve_full_history() {
    // Small nodes + many versions of few keys force TIME splits.
    let (_cs, tree) = setup(TsbConfig::small_nodes(8, 8));
    let mut stamps = Vec::new();
    for round in 0..40u64 {
        for k in 0..3u64 {
            let ts = put(&tree, &key(k), format!("r{round}-k{k}").as_bytes());
            stamps.push((k, round, ts));
        }
    }
    let report = tree.validate().unwrap();
    assert!(report.is_well_formed(), "{:?}", report.violations);
    assert!(
        report.history_nodes > 0,
        "version churn must have time-split"
    );
    // Every historical version is still reachable as-of its write time.
    for &(k, round, ts) in &stamps {
        assert_eq!(
            tree.get_as_of(&key(k), ts).unwrap(),
            Some(format!("r{round}-k{k}").into_bytes()),
            "key {k} round {round} at t{ts}"
        );
    }
    // Current reads see the last round.
    for k in 0..3u64 {
        assert_eq!(
            tree.get_current(&key(k)).unwrap(),
            Some(format!("r39-k{k}").into_bytes())
        );
    }
}

#[test]
fn key_splits_preserve_history_access() {
    // Figure 1's key-split rule: the new current node copies the history
    // pointer, staying responsible for the entire history of its key space.
    let (_cs, tree) = setup(TsbConfig::small_nodes(8, 8));
    // Interleave: version churn (causing time splits) then key spread
    // (causing key splits).
    let mut stamps = Vec::new();
    for round in 0..6u64 {
        for k in 0..20u64 {
            let ts = put(&tree, &key(k), format!("r{round}-k{k}").as_bytes());
            stamps.push((k, round, ts));
        }
    }
    tree.run_completions().unwrap();
    let report = tree.validate().unwrap();
    assert!(report.is_well_formed(), "{:?}", report.violations);
    assert!(report.current_nodes > 1, "key spread must have key-split");
    assert!(report.history_nodes > 0, "churn must have time-split");
    for &(k, round, ts) in &stamps {
        assert_eq!(
            tree.get_as_of(&key(k), ts).unwrap(),
            Some(format!("r{round}-k{k}").into_bytes()),
            "key {k} round {round}"
        );
    }
}

#[test]
fn figure_1_topology() {
    // Reproduce the Figure 1 sequence on a single node: a time split, then a
    // key split, then another time split — and verify the pointer copies the
    // figure shows.
    let (cs, tree) = setup(TsbConfig::small_nodes(6, 8));
    // Fill with versions of two keys → time split (history node H1).
    for round in 0..3u64 {
        for k in [1u64, 2] {
            put(&tree, &key(k), format!("r{round}").as_bytes());
        }
    }
    // Spread keys → key split (new current node).
    for k in 3..12u64 {
        put(&tree, &key(k), b"spread");
    }
    tree.run_completions().unwrap();
    let report = tree.validate().unwrap();
    assert!(report.is_well_formed(), "{:?}", report.violations);
    assert!(report.current_nodes >= 2 && report.history_nodes >= 1);

    // Structural assertions: walk the current chain; every current node
    // whose key space intersects the original (time-split) range must reach
    // H-nodes through its history pointer — i.e. key splits copied it.
    let pool = &cs.store.pool;
    let mut cur = {
        // leftmost data node via the validator's счёт — re-derive by descent
        let mut pid = tree.root_pid();
        loop {
            let pin = pool.fetch(pid).unwrap();
            let g = pin.s();
            let hdr = TsbHeader::read(&g).unwrap();
            if hdr.level == 0 {
                break pid;
            }
            pid = pitree::node::IndexTerm::read(&g, 1).unwrap().child;
        }
    };
    let mut with_history = 0;
    loop {
        let pin = pool.fetch(cur).unwrap();
        let g = pin.s();
        let hdr = TsbHeader::read(&g).unwrap();
        assert_eq!(hdr.kind, TsbKind::Current);
        if hdr.hist_side.is_valid() {
            with_history += 1;
            let hp = pool.fetch(hdr.hist_side).unwrap();
            let hg = hp.s();
            let hh = TsbHeader::read(&hg).unwrap();
            assert_eq!(hh.kind, TsbKind::History);
            assert_eq!(hh.t_hi, hdr.t_lo, "history node ends where current begins");
        }
        if !hdr.key_side.is_valid() {
            break;
        }
        cur = hdr.key_side;
    }
    assert!(
        with_history >= 2,
        "after a key split of a time-split node, BOTH current nodes must hold \
         history pointers (Figure 1), found {with_history}"
    );
    // And old versions remain reachable through them.
    assert_eq!(tree.get_as_of(&key(1), 1).unwrap(), Some(b"r0".to_vec()));
}

#[test]
fn aborted_transaction_leaves_no_versions() {
    let (_cs, tree) = setup(TsbConfig::small_nodes(8, 8));
    put(&tree, b"k", b"committed");
    let mut t = tree.begin();
    tree.put(&mut t, b"k", b"doomed").unwrap();
    tree.put(&mut t, b"other", b"doomed").unwrap();
    t.abort(Some(&tree.undo_handler())).unwrap();
    assert_eq!(tree.get_current(b"k").unwrap(), Some(b"committed".to_vec()));
    assert_eq!(tree.get_current(b"other").unwrap(), None);
    let h = tree.history(b"k").unwrap();
    assert_eq!(h.len(), 1);
    assert!(tree.validate().unwrap().is_well_formed());
}

#[test]
fn abort_after_time_split_removes_all_copies() {
    // An uncommitted version that a time split duplicated into a history
    // node must vanish from BOTH copies on abort.
    let (_cs, tree) = setup(TsbConfig::small_nodes(6, 8));
    for round in 0..2u64 {
        put(&tree, b"k", format!("c{round}").as_bytes());
    }
    let mut t = tree.begin();
    tree.put(&mut t, b"k", b"doomed").unwrap();
    // Force time splits while the version is uncommitted.
    for round in 0..4u64 {
        put(&tree, b"j", format!("x{round}").as_bytes());
        put(&tree, b"l", format!("y{round}").as_bytes());
    }
    t.abort(Some(&tree.undo_handler())).unwrap();
    assert_eq!(tree.get_current(b"k").unwrap(), Some(b"c1".to_vec()));
    let h = tree.history(b"k").unwrap();
    assert_eq!(h.len(), 2, "only the two committed versions remain: {h:?}");
    assert!(tree.validate().unwrap().is_well_formed());
}

#[test]
fn crash_recovery_preserves_committed_versions() {
    let cfg = TsbConfig::small_nodes(8, 8);
    let (cs, tree) = setup(cfg);
    let mut stamps = Vec::new();
    for round in 0..10u64 {
        for k in 0..6u64 {
            let ts = put(&tree, &key(k), format!("r{round}").as_bytes());
            stamps.push((k, round, ts));
        }
    }
    drop(tree);
    let cs2 = cs.crash().unwrap();
    let (tree2, _stats) = TsbTree::recover(Arc::clone(&cs2.store), 1, cfg).unwrap();
    let report = tree2.validate().unwrap();
    assert!(report.is_well_formed(), "{:?}", report.violations);
    for &(k, round, ts) in &stamps {
        assert_eq!(
            tree2.get_as_of(&key(k), ts).unwrap(),
            Some(format!("r{round}").into_bytes())
        );
    }
    // The clock resumes above every recovered timestamp.
    let t_new = put(&tree2, b"post-crash", b"v");
    assert!(t_new > stamps.last().unwrap().2);
}

#[test]
fn crash_log_prefix_sweep() {
    let cfg = TsbConfig::small_nodes(6, 6);
    let (cs, tree) = setup(cfg);
    for round in 0..4u64 {
        for k in 0..8u64 {
            put(&tree, &key(k), format!("r{round}").as_bytes());
        }
    }
    drop(tree);
    cs.store.log.force_all().unwrap();
    let records = cs.store.log.scan(None).expect("scan");
    for (idx, rec) in records.iter().enumerate() {
        if idx % 4 != 0 {
            continue;
        }
        let cut = rec.lsn.0 - 1;
        let cs2 = cs.crash_with_log_prefix(cut).unwrap();
        let Ok((tree2, _)) = TsbTree::recover(Arc::clone(&cs2.store), 1, cfg) else {
            continue;
        };
        let report = tree2.validate().unwrap();
        assert!(
            report.is_well_formed(),
            "cut={cut}: {:?}",
            report.violations
        );
    }
}

#[test]
fn scan_as_of_snapshots() {
    let (_cs, tree) = setup(TsbConfig::small_nodes(8, 8));
    for k in 0..10u64 {
        put(&tree, &key(k), b"old");
    }
    let t_snap = tree.now();
    for k in 0..10u64 {
        if k % 2 == 0 {
            del(&tree, &key(k));
        } else {
            put(&tree, &key(k), b"new");
        }
    }
    // Snapshot at t_snap: everything alive with the old value.
    let snap = tree.scan_as_of(&key(0), &key(100), t_snap).unwrap();
    assert_eq!(snap.len(), 10);
    assert!(snap.iter().all(|(_, v)| v == b"old"));
    // Now: evens deleted, odds updated.
    let now = tree.scan_as_of(&key(0), &key(100), tree.now()).unwrap();
    assert_eq!(now.len(), 5);
    assert!(now.iter().all(|(_, v)| v == b"new"));
}

#[test]
fn unposted_key_splits_complete_lazily() {
    let mut cfg = TsbConfig::small_nodes(6, 6);
    cfg.auto_complete = false;
    let (_cs, tree) = setup(cfg);
    for k in 0..40u64 {
        put(&tree, &key(k), b"v");
    }
    let report = tree.validate().unwrap();
    assert!(report.is_well_formed(), "{:?}", report.violations);
    // Searches work through side pointers regardless.
    for k in 0..40u64 {
        assert_eq!(tree.get_current(&key(k)).unwrap(), Some(b"v".to_vec()));
    }
    tree.run_completions().unwrap();
    tree.run_completions().unwrap();
    let report2 = tree.validate().unwrap();
    assert!(report2.is_well_formed(), "{:?}", report2.violations);
    assert!(report2.unposted_nodes <= report.unposted_nodes);
}
