//! TSB-tree concurrency: versioned writers and as-of readers sharing one
//! tree, with time/key splits and postings running between them.

use pitree::store::CrashableStore;
use pitree_tsb::{TsbConfig, TsbTree};
use std::sync::Arc;

fn key(i: u64) -> Vec<u8> {
    i.to_be_bytes().to_vec()
}

#[test]
fn concurrent_versioned_writers() {
    let cs = CrashableStore::create(2048, 300_000).unwrap();
    let tree =
        Arc::new(TsbTree::create(Arc::clone(&cs.store), 1, TsbConfig::small_nodes(8, 8)).unwrap());
    let threads = 6u64;
    std::thread::scope(|s| {
        for t in 0..threads {
            let tree = Arc::clone(&tree);
            s.spawn(move || {
                for round in 0..60u64 {
                    // Each thread owns a disjoint key set; churn forces time
                    // splits, spread forces key splits.
                    let k = (round % 12) * threads + t;
                    let mut txn = tree.begin();
                    tree.put(&mut txn, &key(k), format!("t{t}r{round}").as_bytes())
                        .unwrap();
                    txn.commit().unwrap();
                }
            });
        }
    });
    for _ in 0..6 {
        tree.run_completions().unwrap();
    }
    let report = tree.validate().unwrap();
    assert!(report.is_well_formed(), "{:?}", report.violations);
    // Each thread's keys carry that thread's final round values.
    for t in 0..threads {
        for slot in 0..12u64 {
            let k = slot * threads + t;
            let got = tree.get_current(&key(k)).unwrap().unwrap();
            let s = String::from_utf8(got).unwrap();
            assert!(s.starts_with(&format!("t{t}r")), "key {k} got {s}");
        }
    }
}

#[test]
fn readers_see_stable_snapshots_during_writes() {
    let cs = CrashableStore::create(2048, 300_000).unwrap();
    let tree =
        Arc::new(TsbTree::create(Arc::clone(&cs.store), 1, TsbConfig::small_nodes(8, 8)).unwrap());
    // Preload every key once and snapshot the time.
    for k in 0..30u64 {
        let mut txn = tree.begin();
        tree.put(&mut txn, &key(k), b"epoch-0").unwrap();
        txn.commit().unwrap();
    }
    let snapshot_t = tree.now();
    std::thread::scope(|s| {
        // Writers churn new versions.
        for t in 0..3u64 {
            let tree = Arc::clone(&tree);
            s.spawn(move || {
                for round in 0..80u64 {
                    let k = (round * 3 + t) % 30;
                    let mut txn = tree.begin();
                    tree.put(&mut txn, &key(k), b"epoch-1").unwrap();
                    txn.commit().unwrap();
                }
            });
        }
        // Readers at the snapshot must always see epoch-0 regardless of the
        // concurrent churn — the time-split machinery's whole point.
        for _ in 0..3 {
            let tree = Arc::clone(&tree);
            s.spawn(move || {
                for round in 0..200u64 {
                    let k = round % 30;
                    let got = tree.get_as_of(&key(k), snapshot_t).unwrap();
                    assert_eq!(got, Some(b"epoch-0".to_vec()), "key {k}");
                }
            });
        }
    });
    assert!(tree.validate().unwrap().is_well_formed());
}
