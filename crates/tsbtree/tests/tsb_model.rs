//! Property-based model checking of the TSB-tree: arbitrary interleavings
//! of versioned puts, deletes, aborted batches, crash/recover cycles, and
//! completion passes, checked against a full multiversion reference model
//! (`BTreeMap<key, BTreeMap<time, Option<value>>>`). Every as-of read at
//! every historical timestamp must agree with the model.
//!
//! Runs on the pitree-sim property runner: fixed seed corpus, replayable
//! with `PITREE_SIM_SEED=<seed>`.

use pitree::store::CrashableStore;
use pitree_sim::{prop, SimRng};
use pitree_tsb::{TsbConfig, TsbTree};
use std::collections::BTreeMap;
use std::sync::Arc;

#[derive(Debug, Clone)]
enum Op {
    Put(u8, u8),
    Delete(u8),
    AbortedBatch(Vec<(u8, u8)>),
    RunCompletions,
    CrashRecover,
}

fn gen_op(rng: &mut SimRng) -> Op {
    match rng.below(11) {
        0..=5 => Op::Put(rng.below(24) as u8, rng.byte()),
        6..=7 => Op::Delete(rng.below(24) as u8),
        8 => {
            let n = rng.range_usize(1..5);
            Op::AbortedBatch((0..n).map(|_| (rng.below(24) as u8, rng.byte())).collect())
        }
        9 => Op::RunCompletions,
        _ => Op::CrashRecover,
    }
}

fn key(k: u8) -> Vec<u8> {
    vec![b'k', k]
}

fn val(v: u8) -> Vec<u8> {
    vec![v; (v as usize % 7) + 1]
}

type Model = BTreeMap<u8, BTreeMap<u64, Option<Vec<u8>>>>;

fn model_as_of(model: &Model, k: u8, t: u64) -> Option<Vec<u8>> {
    model
        .get(&k)
        .and_then(|versions| versions.range(..=t).next_back())
        .and_then(|(_, v)| v.clone())
}

#[test]
fn tsb_matches_multiversion_model() {
    prop::run_cases("tsb_matches_multiversion_model", 16, |rng| {
        let n_ops = rng.range_usize(1..80);
        let ops: Vec<Op> = (0..n_ops).map(|_| gen_op(rng)).collect();
        let cfg = TsbConfig::small_nodes(6, 6);
        let mut cs = CrashableStore::create(512, 200_000).unwrap();
        let mut tree = TsbTree::create(Arc::clone(&cs.store), 1, cfg).unwrap();
        let mut model: Model = BTreeMap::new();
        let mut max_t = 0u64;

        for op in ops {
            match op {
                Op::Put(k, v) => {
                    let mut txn = tree.begin();
                    let t = tree.put(&mut txn, &key(k), &val(v)).unwrap();
                    txn.commit().unwrap();
                    model.entry(k).or_default().insert(t, Some(val(v)));
                    max_t = max_t.max(t);
                }
                Op::Delete(k) => {
                    let mut txn = tree.begin();
                    let t = tree.delete(&mut txn, &key(k)).unwrap();
                    txn.commit().unwrap();
                    model.entry(k).or_default().insert(t, None);
                    max_t = max_t.max(t);
                }
                Op::AbortedBatch(batch) => {
                    let mut txn = tree.begin();
                    for &(k, v) in &batch {
                        let t = tree.put(&mut txn, &key(k), &val(v)).unwrap();
                        max_t = max_t.max(t);
                    }
                    txn.abort(Some(&tree.undo_handler())).unwrap();
                    // Model unchanged — but the clock advanced.
                }
                Op::RunCompletions => {
                    tree.run_completions().unwrap();
                }
                Op::CrashRecover => {
                    drop(tree);
                    let cs2 = cs.crash().unwrap();
                    let (t2, _) = TsbTree::recover(Arc::clone(&cs2.store), 1, cfg).unwrap();
                    cs = cs2;
                    tree = t2;
                }
            }
        }

        let report = tree.validate().unwrap();
        assert!(
            report.is_well_formed(),
            "violations: {:?}",
            report.violations
        );

        // Current reads.
        for k in 0..24u8 {
            assert_eq!(
                tree.get_current(&key(k)).unwrap(),
                model_as_of(&model, k, u64::MAX - 1),
                "current read of key {k}"
            );
        }
        // As-of reads at every historical timestamp (and a few beyond).
        for t in 0..=max_t + 1 {
            for k in 0..24u8 {
                assert_eq!(
                    tree.get_as_of(&key(k), t).unwrap(),
                    model_as_of(&model, k, t),
                    "as-of read of key {k} at t{t}"
                );
            }
        }
        // Histories agree with the model exactly.
        for (k, versions) in &model {
            let got = tree.history(&key(*k)).unwrap();
            let want: Vec<(u64, Option<Vec<u8>>)> =
                versions.iter().map(|(&t, v)| (t, v.clone())).collect();
            assert_eq!(got, want, "history of key {k}");
        }
    });
}
