//! Hot/cold hammer over the sharded buffer pool.
//!
//! Many threads fetch a small hot set (always resident, hit path, different
//! shards) and a large cold set (constant eviction traffic, miss path with
//! I/O outside the shard lock). Every page carries a self-describing payload
//! in slot 0 so lost updates, torn installs, or cross-frame mixups show up
//! as content mismatches; a final flush round-trips everything through disk.

use pitree_pagestore::buffer::WalFlush;
use pitree_pagestore::{
    BufferPool, DiskManager, Lsn, MemDisk, PageId, PageType, StoreError, StoreResult,
};
use pitree_sim::SimRng;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

struct NoopWal;
impl WalFlush for NoopWal {
    fn flush_to(&self, _lsn: Lsn) -> StoreResult<()> {
        Ok(())
    }
}

const HOT: u64 = 8; // pids 1..=8
const COLD: u64 = 256; // pids 1..=256
const FRAMES: usize = 64; // 4 shards by default; far fewer frames than pages

fn payload(pid: PageId, version: u64) -> Vec<u8> {
    let mut v = pid.0.to_be_bytes().to_vec();
    v.extend_from_slice(&version.to_be_bytes());
    v
}

#[test]
fn hot_cold_hammer_preserves_page_contents() {
    let disk = Arc::new(MemDisk::new());
    let pool = Arc::new(BufferPool::new(
        Arc::clone(&disk) as Arc<dyn DiskManager>,
        FRAMES,
    ));
    pool.set_wal_hook(Arc::new(NoopWal));
    assert!(pool.shard_count() > 1, "this test wants a sharded pool");

    // Seed every page with version 0 of its self-describing payload.
    for i in 1..=COLD {
        let p = pool.fetch_or_create(PageId(i), PageType::Node).unwrap();
        let mut g = p.x();
        g.insert(0, &payload(PageId(i), 0)).unwrap();
        p.mark_dirty();
    }

    let next_lsn = AtomicU64::new(1);
    let mut root = SimRng::new(0xab5e);
    std::thread::scope(|s| {
        for _ in 0..8 {
            let pool = Arc::clone(&pool);
            let next_lsn = &next_lsn;
            let mut rng = root.fork();
            s.spawn(move || {
                for _ in 0..600 {
                    let pid = if rng.chance(0.7) {
                        PageId(1 + rng.below(HOT))
                    } else {
                        PageId(1 + rng.below(COLD))
                    };
                    let pin = match pool.fetch(pid) {
                        Ok(p) => p,
                        // All frames of the shard pinned by peers mid-fetch:
                        // legitimate transient state, skip this op.
                        Err(StoreError::PoolExhausted) => continue,
                        Err(e) => panic!("fetch {pid}: {e}"),
                    };
                    if rng.chance(0.5) {
                        let g = pin.s();
                        let got = g.get(0).unwrap();
                        assert_eq!(
                            &got[..8],
                            &pid.0.to_be_bytes(),
                            "page {pid} holds another page's bytes"
                        );
                    } else {
                        let lsn = next_lsn.fetch_add(1, Ordering::SeqCst);
                        let mut g = pin.x();
                        let version =
                            u64::from_be_bytes(g.get(0).unwrap()[8..16].try_into().unwrap());
                        g.update(0, &payload(pid, version + 1)).unwrap();
                        g.set_lsn(Lsn(lsn));
                        pin.mark_dirty_at(Lsn(lsn));
                    }
                }
            });
        }
    });

    // Nothing was lost in flight: every page still self-describes, both in
    // the pool and after a full flush from disk alone.
    pool.flush_all().unwrap();
    for i in 1..=COLD {
        let page = disk.read_page(PageId(i)).unwrap();
        let got = page.get(0).unwrap();
        assert_eq!(&got[..8], &i.to_be_bytes(), "page {i} corrupt on disk");
    }
    let stats = pool.stats();
    assert!(stats.misses.get() >= COLD, "cold set must churn");
    assert!(stats.hits.get() > 0, "hot set must hit");
}
