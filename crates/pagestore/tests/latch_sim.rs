//! Simulation tests of the latch manager: U→X promotion under S-reader
//! contention, starvation freedom, and the debug-build latch-order checks
//! that back the §4.1 deadlock-freedom argument.

use pitree_pagestore::latch::{order, Latch};
use pitree_sim::{prop, SimRng};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};

#[test]
fn u_promotes_to_x_under_reader_contention() {
    // Readers churn S latches while a single updater repeatedly takes U,
    // promotes to X (which must drain readers, §4.1's update-mode rule),
    // increments, and demotes back down. Every increment must be exclusive.
    const PROMOTIONS: u64 = 200;
    let latch = Latch::new(0u64);
    let reads = AtomicU64::new(0);
    std::thread::scope(|s| {
        for t in 0..3u64 {
            let latch = &latch;
            let reads = &reads;
            s.spawn(move || {
                let mut rng = SimRng::new(t);
                loop {
                    let g = latch.s();
                    let v = *g;
                    drop(g);
                    reads.fetch_add(1, Ordering::Relaxed);
                    if v >= PROMOTIONS {
                        break;
                    }
                    if rng.chance(0.2) {
                        std::thread::yield_now();
                    }
                }
            });
        }
        s.spawn(|| {
            for _ in 0..PROMOTIONS {
                let u = latch.u();
                let mut x = u.promote();
                *x += 1;
                // Exercise the demotion ladder too: X → U → drop.
                let u2 = x.demote_to_u();
                drop(u2);
            }
        });
    });
    assert_eq!(*latch.s(), PROMOTIONS);
    assert!(reads.load(Ordering::Relaxed) > 0, "readers made progress");
}

#[test]
fn u_is_single_holder_but_compatible_with_s() {
    let latch = Latch::new(());
    let u = latch.u();
    // A second U (and any X) must be refused while U is held…
    assert!(latch.try_u().is_none(), "U is single-holder");
    assert!(latch.try_x().is_none(), "X conflicts with U");
    // …but readers still get through (that is U's whole point).
    assert!(latch.try_s().is_some(), "S is compatible with U");
    drop(u);
    assert!(latch.try_u().is_some());
}

#[test]
fn promotion_waits_for_readers_and_blocks_new_ones() {
    // A reader pins the latch; the updater's promotion must complete only
    // after the reader leaves, and must not be starved by late readers.
    let latch = Latch::new(0u32);
    let promoted = AtomicU64::new(0);
    std::thread::scope(|s| {
        let reader = latch.s();
        let h = s.spawn(|| {
            let u = latch.u();
            let mut x = u.promote(); // blocks until the reader drops
            *x = 1;
            promoted.store(1, Ordering::SeqCst);
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert_eq!(
            promoted.load(Ordering::SeqCst),
            0,
            "promotion cannot finish under S"
        );
        drop(reader);
        h.join().unwrap();
    });
    assert_eq!(*latch.s(), 1);
}

#[test]
fn seeded_mixed_mode_storm_stays_consistent() {
    // A seeded storm of S/U/X/try acquisitions over one latch-protected
    // counter: X and promoted-U increments are exclusive, so the final value
    // must equal the number of successful increments.
    prop::run_cases("latch_mixed_mode_storm", 8, |rng| {
        let latch = Latch::new(0u64);
        let expected = AtomicU64::new(0);
        let seeds: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
        std::thread::scope(|s| {
            for &seed in &seeds {
                let latch = &latch;
                let expected = &expected;
                s.spawn(move || {
                    let mut rng = SimRng::new(seed);
                    for _ in 0..300 {
                        match rng.below(5) {
                            0 => {
                                let mut x = latch.x();
                                *x += 1;
                                expected.fetch_add(1, Ordering::Relaxed);
                            }
                            1 => {
                                let u = latch.u();
                                if rng.chance(0.5) {
                                    let mut x = u.promote();
                                    *x += 1;
                                    expected.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                            2 => {
                                if let Some(mut x) = latch.try_x() {
                                    *x += 1;
                                    expected.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                            3 => {
                                let _ = latch.try_s().map(|g| *g);
                            }
                            _ => {
                                let _ = *latch.s();
                            }
                        }
                        if rng.chance(0.1) {
                            std::thread::yield_now();
                        }
                    }
                });
            }
        });
        assert_eq!(*latch.s(), expected.load(Ordering::Relaxed));
    });
}

#[test]
fn latch_order_violation_panics_in_debug() {
    let parent = Latch::new_ordered(0u8, 10);
    let child = Latch::new_ordered(0u8, 20);
    // In order: parent (10) then child (20) — fine.
    {
        let _p = parent.s();
        let _c = child.s();
        assert_eq!(order::held_ranks(), vec![10, 20]);
    }
    assert!(
        order::held_ranks().is_empty(),
        "guards must pop their ranks"
    );
    // Out of order: child (20) then a *blocking* parent (10) acquisition.
    let c = child.s();
    let result = catch_unwind(AssertUnwindSafe(|| {
        let _p = parent.s();
    }));
    if cfg!(debug_assertions) {
        assert!(
            result.is_err(),
            "blocking out-of-order acquisition must panic in debug"
        );
    } else {
        assert!(result.is_ok());
    }
    drop(c);
}

#[test]
fn try_acquisitions_are_exempt_from_order_checks() {
    // §5.2.2(b): climbing back up a saved path uses conditional acquisition,
    // which must never trip the order check.
    let parent = Latch::new_ordered(0u8, 10);
    let child = Latch::new_ordered(0u8, 20);
    let c = child.s();
    let p = parent.try_s();
    assert!(p.is_some(), "try_* against order must be allowed");
    if cfg!(debug_assertions) {
        assert_eq!(order::held_ranks(), vec![20, 10]);
    }
    drop(p);
    drop(c);
    assert!(order::held_ranks().is_empty());
}

#[test]
fn unranked_latches_never_participate_in_order_checks() {
    let plain = Latch::new(0u8);
    let ranked = Latch::new_ordered(0u8, 5);
    let _r = ranked.x();
    // Holding rank 5, acquiring an unranked latch (rank = UNRANKED) is fine
    // and leaves no trace in the held stack.
    let _g = plain.x();
    if cfg!(debug_assertions) {
        assert_eq!(order::held_ranks(), vec![5]);
    }
}
