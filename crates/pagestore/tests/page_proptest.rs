//! Property-based tests of the slotted page and the physiological
//! operation vocabulary: arbitrary operation sequences against reference
//! models, and invert/apply round-trips from arbitrary page states.
//!
//! Runs on the pitree-sim property runner: fixed seed corpus, replayable
//! with `PITREE_SIM_SEED=<seed>`.

use pitree_pagestore::page::{Page, PageType};
use pitree_pagestore::{PageOp, StoreError};
use pitree_sim::{prop, SimRng};
use std::collections::BTreeMap;

#[derive(Debug, Clone)]
enum SlotOp {
    Insert(u16, Vec<u8>),
    Remove(u16),
    Update(u16, Vec<u8>),
    Compact,
}

fn gen_slot_op(rng: &mut SimRng) -> SlotOp {
    match rng.below(9) {
        0..=3 => {
            let len = rng.range_usize(0..40);
            SlotOp::Insert(rng.next_u64() as u16, rng.bytes(len))
        }
        4..=5 => SlotOp::Remove(rng.next_u64() as u16),
        6..=7 => {
            let len = rng.range_usize(0..40);
            SlotOp::Update(rng.next_u64() as u16, rng.bytes(len))
        }
        _ => SlotOp::Compact,
    }
}

/// Slot operations agree with a `Vec<Vec<u8>>` model under every
/// interleaving, including out-of-range and page-full errors.
#[test]
fn slot_ops_match_vec_model() {
    prop::run("slot_ops_match_vec_model", |rng| {
        let n_ops = rng.range_usize(1..200);
        let mut page = Page::new(PageType::Node);
        let mut model: Vec<Vec<u8>> = Vec::new();
        for _ in 0..n_ops {
            match gen_slot_op(rng) {
                SlotOp::Insert(i, bytes) => {
                    let i = i % (model.len() as u16 + 2); // occasionally out of range
                    let r = page.insert(i, &bytes);
                    if (i as usize) <= model.len() {
                        match r {
                            Ok(()) => model.insert(i as usize, bytes),
                            Err(StoreError::PageFull { .. }) => {}
                            Err(e) => panic!("insert: {e}"),
                        }
                    } else {
                        assert!(
                            matches!(r, Err(StoreError::BadSlot { .. })),
                            "expected BadSlot"
                        );
                    }
                }
                SlotOp::Remove(i) => {
                    let i = i % (model.len() as u16 + 2);
                    let r = page.remove(i);
                    if (i as usize) < model.len() {
                        assert_eq!(r.unwrap(), model.remove(i as usize));
                    } else {
                        assert!(
                            matches!(r, Err(StoreError::BadSlot { .. })),
                            "expected BadSlot"
                        );
                    }
                }
                SlotOp::Update(i, bytes) => {
                    let i = i % (model.len() as u16 + 2);
                    let r = page.update(i, &bytes);
                    if (i as usize) < model.len() {
                        match r {
                            Ok(old) => {
                                assert_eq!(&old, &model[i as usize]);
                                model[i as usize] = bytes;
                            }
                            Err(StoreError::PageFull { .. }) => {}
                            Err(e) => panic!("update: {e}"),
                        }
                    } else {
                        assert!(
                            matches!(r, Err(StoreError::BadSlot { .. })),
                            "expected BadSlot"
                        );
                    }
                }
                SlotOp::Compact => page.compact(),
            }
            // Invariants after every step.
            assert_eq!(page.slot_count() as usize, model.len());
            for (i, rec) in model.iter().enumerate() {
                assert_eq!(page.get(i as u16).unwrap(), rec.as_slice());
            }
        }
    });
}

/// Keyed operations agree with a `BTreeMap` model.
#[test]
fn keyed_ops_match_btreemap() {
    prop::run("keyed_ops_match_btreemap", |rng| {
        let n_ops = rng.range_usize(1..150);
        let mut page = Page::new(PageType::Node);
        page.insert(0, b"header").unwrap();
        let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
        for _ in 0..n_ops {
            let sel = rng.below(3);
            let key_len = rng.range_usize(1..8);
            let key = rng.bytes(key_len);
            let val_len = rng.range_usize(0..16);
            let val = rng.bytes(val_len);
            match sel {
                0 => {
                    let entry = Page::make_entry(&key, &val);
                    let r = page.keyed_insert(&entry);
                    if model.contains_key(&key) {
                        assert!(r.is_err(), "duplicate insert must fail");
                    } else if r.is_ok() {
                        model.insert(key.clone(), val.clone());
                    }
                }
                1 => {
                    let r = page.keyed_remove(&key);
                    match model.remove(&key) {
                        Some(v) => assert_eq!(Page::entry_payload(&r.unwrap()).to_vec(), v),
                        None => assert!(r.is_err()),
                    }
                }
                _ => {
                    let r = page.keyed_find(&key).unwrap();
                    assert_eq!(r.is_ok(), model.contains_key(&key));
                }
            }
            // Entries stay sorted and match the model exactly.
            assert_eq!(page.entry_count() as usize, model.len());
            let mut it = model.iter();
            for slot in 1..page.slot_count() {
                let e = page.get(slot).unwrap();
                let (mk, mv) = it.next().unwrap();
                assert_eq!(Page::entry_key(e), mk.as_slice());
                assert_eq!(Page::entry_payload(e), mv.as_slice());
            }
        }
    });
}

/// `op.invert` then applying both restores visible page content, from
/// arbitrary prior states.
#[test]
fn invert_roundtrips_from_arbitrary_states() {
    prop::run_cases("invert_roundtrips_from_arbitrary_states", 64, |rng| {
        let mut page = Page::new(PageType::Node);
        page.insert(0, b"hdr").unwrap();
        let n_seed = rng.range_usize(0..20);
        for _ in 0..n_seed {
            let kl = rng.range_usize(1..6);
            let k = rng.bytes(kl);
            let vl = rng.range_usize(0..10);
            let v = rng.bytes(vl);
            let _ = page.keyed_insert(&Page::make_entry(&k, &v));
        }
        let op_sel = rng.below(6) as u8;
        let kl = rng.range_usize(1..6);
        let key = rng.bytes(kl);
        let vl = rng.range_usize(0..10);
        let val = rng.bytes(vl);
        let present = page.keyed_find(&key).unwrap().is_ok();
        let op = match op_sel {
            0 if !present => PageOp::KeyedInsert {
                bytes: Page::make_entry(&key, &val),
            },
            1 if present => PageOp::KeyedRemove { key: key.clone() },
            2 if present => PageOp::KeyedUpdate {
                bytes: Page::make_entry(&key, &val),
            },
            3 => PageOp::SetFlags {
                flags: val.first().copied().unwrap_or(1),
            },
            4 => PageOp::Format { ty: PageType::Free },
            _ => PageOp::UpdateSlot {
                slot: 0,
                bytes: b"hdr2".to_vec(),
            },
        };
        let snapshot: Vec<Vec<u8>> = (0..page.slot_count())
            .map(|i| page.get(i).unwrap().to_vec())
            .collect();
        let flags = page.flags();
        let inv = op.invert(&page).unwrap();
        if op.apply(&mut page).is_ok() {
            inv.apply(&mut page).unwrap();
            let after: Vec<Vec<u8>> = (0..page.slot_count())
                .map(|i| page.get(i).unwrap().to_vec())
                .collect();
            assert_eq!(snapshot, after);
            assert_eq!(flags, page.flags());
        }
    });
}
