//! Property-based tests of the slotted page and the physiological
//! operation vocabulary: arbitrary operation sequences against reference
//! models, and invert/apply round-trips from arbitrary page states.

use pitree_pagestore::page::{Page, PageType};
use pitree_pagestore::{PageOp, StoreError};
use proptest::prelude::*;
use std::collections::BTreeMap;

#[derive(Debug, Clone)]
enum SlotOp {
    Insert(u16, Vec<u8>),
    Remove(u16),
    Update(u16, Vec<u8>),
    Compact,
}

fn slot_op() -> impl Strategy<Value = SlotOp> {
    prop_oneof![
        4 => (any::<u16>(), proptest::collection::vec(any::<u8>(), 0..40))
            .prop_map(|(i, b)| SlotOp::Insert(i, b)),
        2 => any::<u16>().prop_map(SlotOp::Remove),
        2 => (any::<u16>(), proptest::collection::vec(any::<u8>(), 0..40))
            .prop_map(|(i, b)| SlotOp::Update(i, b)),
        1 => Just(SlotOp::Compact),
    ]
}

proptest! {
    /// Slot operations agree with a `Vec<Vec<u8>>` model under every
    /// interleaving, including out-of-range and page-full errors.
    #[test]
    fn slot_ops_match_vec_model(ops in proptest::collection::vec(slot_op(), 1..200)) {
        let mut page = Page::new(PageType::Node);
        let mut model: Vec<Vec<u8>> = Vec::new();
        for op in ops {
            match op {
                SlotOp::Insert(i, bytes) => {
                    let i = i % (model.len() as u16 + 2); // occasionally out of range
                    let r = page.insert(i, &bytes);
                    if (i as usize) <= model.len() {
                        match r {
                            Ok(()) => model.insert(i as usize, bytes),
                            Err(StoreError::PageFull { .. }) => {}
                            Err(e) => return Err(TestCaseError::fail(format!("insert: {e}"))),
                        }
                    } else {
                        prop_assert!(matches!(r, Err(StoreError::BadSlot { .. })), "expected BadSlot");
                    }
                }
                SlotOp::Remove(i) => {
                    let i = i % (model.len() as u16 + 2);
                    let r = page.remove(i);
                    if (i as usize) < model.len() {
                        prop_assert_eq!(r.unwrap(), model.remove(i as usize));
                    } else {
                        prop_assert!(matches!(r, Err(StoreError::BadSlot { .. })), "expected BadSlot");
                    }
                }
                SlotOp::Update(i, bytes) => {
                    let i = i % (model.len() as u16 + 2);
                    let r = page.update(i, &bytes);
                    if (i as usize) < model.len() {
                        match r {
                            Ok(old) => {
                                prop_assert_eq!(&old, &model[i as usize]);
                                model[i as usize] = bytes;
                            }
                            Err(StoreError::PageFull { .. }) => {}
                            Err(e) => return Err(TestCaseError::fail(format!("update: {e}"))),
                        }
                    } else {
                        prop_assert!(matches!(r, Err(StoreError::BadSlot { .. })), "expected BadSlot");
                    }
                }
                SlotOp::Compact => page.compact(),
            }
            // Invariants after every step.
            prop_assert_eq!(page.slot_count() as usize, model.len());
            for (i, rec) in model.iter().enumerate() {
                prop_assert_eq!(page.get(i as u16).unwrap(), rec.as_slice());
            }
        }
    }

    /// Keyed operations agree with a `BTreeMap` model.
    #[test]
    fn keyed_ops_match_btreemap(
        ops in proptest::collection::vec(
            (any::<u8>(), proptest::collection::vec(any::<u8>(), 1..8), proptest::collection::vec(any::<u8>(), 0..16)),
            1..150,
        )
    ) {
        let mut page = Page::new(PageType::Node);
        page.insert(0, b"header").unwrap();
        let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
        for (sel, key, val) in ops {
            match sel % 3 {
                0 => {
                    let entry = Page::make_entry(&key, &val);
                    let r = page.keyed_insert(&entry);
                    if model.contains_key(&key) {
                        prop_assert!(r.is_err(), "duplicate insert must fail");
                    } else if r.is_ok() {
                        model.insert(key.clone(), val.clone());
                    }
                }
                1 => {
                    let r = page.keyed_remove(&key);
                    match model.remove(&key) {
                        Some(v) => prop_assert_eq!(
                            Page::entry_payload(&r.unwrap()).to_vec(), v),
                        None => prop_assert!(r.is_err()),
                    }
                }
                _ => {
                    let r = page.keyed_find(&key).unwrap();
                    prop_assert_eq!(r.is_ok(), model.contains_key(&key));
                }
            }
            // Entries stay sorted and match the model exactly.
            prop_assert_eq!(page.entry_count() as usize, model.len());
            let mut it = model.iter();
            for slot in 1..page.slot_count() {
                let e = page.get(slot).unwrap();
                let (mk, mv) = it.next().unwrap();
                prop_assert_eq!(Page::entry_key(e), mk.as_slice());
                prop_assert_eq!(Page::entry_payload(e), mv.as_slice());
            }
        }
    }

    /// `op.invert` then applying both restores visible page content, from
    /// arbitrary prior states.
    #[test]
    fn invert_roundtrips_from_arbitrary_states(
        seed in proptest::collection::vec(
            (proptest::collection::vec(any::<u8>(), 1..6), proptest::collection::vec(any::<u8>(), 0..10)),
            0..20,
        ),
        op_sel in 0u8..6,
        key in proptest::collection::vec(any::<u8>(), 1..6),
        val in proptest::collection::vec(any::<u8>(), 0..10),
    ) {
        let mut page = Page::new(PageType::Node);
        page.insert(0, b"hdr").unwrap();
        for (k, v) in &seed {
            let _ = page.keyed_insert(&Page::make_entry(k, v));
        }
        let present = page.keyed_find(&key).unwrap().is_ok();
        let op = match op_sel {
            0 if !present => PageOp::KeyedInsert { bytes: Page::make_entry(&key, &val) },
            1 if present => PageOp::KeyedRemove { key: key.clone() },
            2 if present => PageOp::KeyedUpdate { bytes: Page::make_entry(&key, &val) },
            3 => PageOp::SetFlags { flags: val.first().copied().unwrap_or(1) },
            4 => PageOp::Format { ty: PageType::Free },
            _ => PageOp::UpdateSlot { slot: 0, bytes: b"hdr2".to_vec() },
        };
        let snapshot: Vec<Vec<u8>> =
            (0..page.slot_count()).map(|i| page.get(i).unwrap().to_vec()).collect();
        let flags = page.flags();
        let inv = op.invert(&page).unwrap();
        if op.apply(&mut page).is_ok() {
            inv.apply(&mut page).unwrap();
            let after: Vec<Vec<u8>> =
                (0..page.slot_count()).map(|i| page.get(i).unwrap().to_vec()).collect();
            prop_assert_eq!(snapshot, after);
            prop_assert_eq!(flags, page.flags());
        }
    }
}
