//! Eviction-pressure suite: the clock sweep under a pool ~100× smaller
//! than the working set — the regime the million-key scenario harness
//! runs in (EXPERIMENTS.md S7, pool ≤ 1% of data).
//!
//! Three properties must survive constant displacement:
//!
//! 1. **No lost writes** — every page's self-describing payload (pid +
//!    monotone version) round-trips through eviction write-back and
//!    re-fetch; the final disk image holds the last version written.
//! 2. **Log-before-dirty under churn (§4.3.1)** — the pool must never
//!    hand a dirty page to the disk before the WAL hook has flushed past
//!    that page's LSN. A checking [`DiskManager`] wrapper asserts the
//!    invariant on *every* write-back, so a single early write anywhere
//!    in the sweep fails the suite.
//! 3. **No deadlocked `io_pending`/Busy frames** — after the storm every
//!    page is still fetchable and the pool can flush; a frame left
//!    `io_pending` or a table entry stuck Busy would wedge both.

use pitree_pagestore::buffer::WalFlush;
use pitree_pagestore::{
    BufferPool, DiskManager, Lsn, MemDisk, Page, PageId, PageType, StoreError, StoreResult,
};
use pitree_sim::SimRng;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Working set ~100× the pool: 32 frames vs 3200 pages.
const FRAMES: usize = 32;
const PAGES: u64 = 3_200;

/// WAL stand-in that tracks the highest LSN it has been asked to flush.
struct TrackingWal {
    flushed: AtomicU64,
}

impl WalFlush for TrackingWal {
    fn flush_to(&self, lsn: Lsn) -> StoreResult<()> {
        self.flushed.fetch_max(lsn.0, Ordering::SeqCst);
        Ok(())
    }
}

/// Disk wrapper that fails the test if any page image reaches "disk"
/// with an LSN the WAL has not flushed — write-ahead, checked at the
/// exact boundary the paper's §4.3.1 names.
struct CheckingDisk {
    inner: MemDisk,
    wal: Arc<TrackingWal>,
    writes: AtomicU64,
}

impl DiskManager for CheckingDisk {
    fn read_page(&self, pid: PageId) -> StoreResult<Page> {
        self.inner.read_page(pid)
    }

    fn write_page(&self, pid: PageId, page: &Page) -> StoreResult<()> {
        let flushed = self.wal.flushed.load(Ordering::SeqCst);
        assert!(
            page.lsn().0 <= flushed,
            "log-before-dirty violated: page {pid} written at lsn {} with WAL flushed only to {}",
            page.lsn().0,
            flushed
        );
        self.writes.fetch_add(1, Ordering::Relaxed);
        self.inner.write_page(pid, page)
    }

    fn num_pages(&self) -> u64 {
        self.inner.num_pages()
    }
}

fn payload(pid: PageId, version: u64) -> Vec<u8> {
    let mut v = pid.0.to_be_bytes().to_vec();
    v.extend_from_slice(&version.to_be_bytes());
    v
}

fn build_pool() -> (Arc<BufferPool>, Arc<CheckingDisk>, Arc<TrackingWal>) {
    let wal = Arc::new(TrackingWal {
        flushed: AtomicU64::new(0),
    });
    let disk = Arc::new(CheckingDisk {
        inner: MemDisk::new(),
        wal: Arc::clone(&wal),
        writes: AtomicU64::new(0),
    });
    let pool = Arc::new(BufferPool::new(
        Arc::clone(&disk) as Arc<dyn DiskManager>,
        FRAMES,
    ));
    pool.set_wal_hook(Arc::clone(&wal) as Arc<dyn WalFlush>);
    (pool, disk, wal)
}

/// Seed every page (version 0), letting eviction spill them as we go —
/// the pool never holds more than 1% of the set.
fn seed(pool: &BufferPool, wal: &TrackingWal, next_lsn: &AtomicU64) {
    for i in 1..=PAGES {
        let lsn = Lsn(next_lsn.fetch_add(1, Ordering::SeqCst));
        // WAL record for this update is "flushed" before the page dirties
        // — the discipline the tree layers follow via their real log.
        wal.flushed.fetch_max(lsn.0, Ordering::SeqCst);
        let pin = pool.fetch_or_create(PageId(i), PageType::Node).unwrap();
        let mut g = pin.x();
        g.insert(0, &payload(PageId(i), 0)).unwrap();
        g.set_lsn(lsn);
        drop(g);
        pin.mark_dirty_at(lsn);
    }
}

#[test]
fn eviction_churn_loses_no_writes_and_respects_wal() {
    let (pool, disk, wal) = build_pool();
    let next_lsn = AtomicU64::new(1);
    seed(&pool, &wal, &next_lsn);

    // Version book-keeping: highest version committed per page.
    let versions: Vec<AtomicU64> = (0..=PAGES).map(|_| AtomicU64::new(0)).collect();

    let mut root = SimRng::new(0xe71c);
    std::thread::scope(|s| {
        for _ in 0..4 {
            let pool = Arc::clone(&pool);
            let (next_lsn, wal, versions) = (&next_lsn, &wal, &versions);
            let mut rng = root.fork();
            s.spawn(move || {
                for _ in 0..2_000 {
                    let pid = PageId(1 + rng.below(PAGES));
                    let pin = match pool.fetch(pid) {
                        Ok(p) => p,
                        // Every frame of the shard pinned mid-I/O by
                        // peers: a legitimate transient, not a wedge.
                        Err(StoreError::PoolExhausted) => continue,
                        Err(e) => panic!("fetch {pid}: {e}"),
                    };
                    if rng.chance(0.5) {
                        let g = pin.s();
                        let got = g.get(0).unwrap();
                        assert_eq!(&got[..8], &pid.0.to_be_bytes(), "foreign bytes in {pid}");
                        let ver = u64::from_be_bytes(got[8..16].try_into().unwrap());
                        let committed = versions[pid.0 as usize].load(Ordering::SeqCst);
                        assert!(
                            ver <= committed,
                            "page {pid} read version {ver} > committed {committed}"
                        );
                    } else {
                        let lsn = Lsn(next_lsn.fetch_add(1, Ordering::SeqCst));
                        wal.flushed.fetch_max(lsn.0, Ordering::SeqCst);
                        let mut g = pin.x();
                        let ver = u64::from_be_bytes(g.get(0).unwrap()[8..16].try_into().unwrap());
                        g.update(0, &payload(pid, ver + 1)).unwrap();
                        g.set_lsn(lsn);
                        versions[pid.0 as usize].fetch_max(ver + 1, Ordering::SeqCst);
                        drop(g);
                        pin.mark_dirty_at(lsn);
                    }
                }
            });
        }
    });

    // The storm over 100× the pool must have churned hard, every
    // write-back passing the WAL check inside CheckingDisk.
    let rec = pool.recorder();
    assert!(
        rec.counter("buf.evictions").get() > PAGES,
        "eviction churn expected: {} evictions",
        rec.counter("buf.evictions").get()
    );
    assert!(
        rec.counter("buf.writebacks").get() > 0,
        "dirty displacement must write back"
    );
    assert!(disk.writes.load(Ordering::SeqCst) > 0);

    // No wedged frames: everything still fetchable, flushable, and the
    // final disk image carries each page's last committed version.
    pool.flush_all().unwrap();
    assert!(pool.dirty_pages().is_empty(), "flush_all left dirt behind");
    for i in 1..=PAGES {
        let page = disk.read_page(PageId(i)).unwrap();
        let got = page.get(0).unwrap();
        assert_eq!(&got[..8], &i.to_be_bytes(), "page {i} corrupt on disk");
        let ver = u64::from_be_bytes(got[8..16].try_into().unwrap());
        assert_eq!(
            ver,
            versions[i as usize].load(Ordering::SeqCst),
            "page {i} lost its last committed write"
        );
    }
}

/// A single thread cycling through far more pages than frames: every
/// fetch past the warm-up displaces a resident page, and the counters
/// must say so — the observability the scenario harness steers by.
#[test]
fn sequential_sweep_counts_evictions_and_writebacks() {
    let (pool, disk, wal) = build_pool();
    let next_lsn = AtomicU64::new(1);
    seed(&pool, &wal, &next_lsn);
    // Settle the seed's resident dirt so the clean sweep starts clean.
    pool.flush_all().unwrap();

    let rec = pool.recorder();
    let ev0 = rec.counter("buf.evictions").get();
    let wb0 = rec.counter("buf.writebacks").get();

    // Clean re-read sweep: misses displace, but nothing is dirty, so
    // evictions advance without write-backs.
    for i in 1..=PAGES {
        let pin = pool.fetch(PageId(i)).unwrap();
        let g = pin.s();
        assert_eq!(&g.get(0).unwrap()[..8], &i.to_be_bytes());
    }
    let clean_ev = rec.counter("buf.evictions").get() - ev0;
    let clean_wb = rec.counter("buf.writebacks").get() - wb0;
    assert!(
        clean_ev >= PAGES - FRAMES as u64,
        "a full sweep over {PAGES} pages through {FRAMES} frames must displace: {clean_ev}"
    );
    assert_eq!(clean_wb, 0, "clean displacement must not write back");

    // Dirty sweep: now every displacement carries a write-back.
    let wb1 = rec.counter("buf.writebacks").get();
    for i in 1..=PAGES {
        let lsn = Lsn(next_lsn.fetch_add(1, Ordering::SeqCst));
        wal.flushed.fetch_max(lsn.0, Ordering::SeqCst);
        let pin = pool.fetch(PageId(i)).unwrap();
        let mut g = pin.x();
        g.update(0, &payload(PageId(i), 1)).unwrap();
        g.set_lsn(lsn);
        drop(g);
        pin.mark_dirty_at(lsn);
    }
    let dirty_wb = rec.counter("buf.writebacks").get() - wb1;
    assert!(
        dirty_wb >= PAGES - FRAMES as u64,
        "dirty sweep must write back on displacement: {dirty_wb}"
    );
    assert!(disk.writes.load(Ordering::SeqCst) >= dirty_wb);
    pool.flush_all().unwrap();
}

/// Pin-heavy pressure: hold several pins per thread while fetching more.
/// The clock must skip pinned frames and either find a victim or report
/// `PoolExhausted` — never hang on an `io_pending` frame or leave the
/// table Busy after the storm.
#[test]
fn pinned_frames_never_wedge_the_sweep() {
    let (pool, _disk, wal) = build_pool();
    let next_lsn = AtomicU64::new(1);
    seed(&pool, &wal, &next_lsn);

    let mut root = SimRng::new(0x91a_0e71);
    std::thread::scope(|s| {
        for _ in 0..4 {
            let pool = Arc::clone(&pool);
            let mut rng = root.fork();
            s.spawn(move || {
                for _ in 0..400 {
                    // Hold up to 4 pins at once, then fetch a 5th.
                    let held: Vec<_> = (0..4)
                        .filter_map(|_| pool.fetch(PageId(1 + rng.below(PAGES))).ok())
                        .collect();
                    match pool.fetch(PageId(1 + rng.below(PAGES))) {
                        Ok(pin) => {
                            let g = pin.s();
                            let _ = g.get(0).unwrap();
                        }
                        Err(StoreError::PoolExhausted) => {}
                        Err(e) => panic!("fetch under pin pressure: {e}"),
                    }
                    drop(held);
                }
            });
        }
    });

    // Post-storm liveness: every page fetchable, pool flushable.
    for i in (1..=PAGES).step_by(37) {
        let pin = pool.fetch(PageId(i)).unwrap();
        assert_eq!(&pin.s().get(0).unwrap()[..8], &i.to_be_bytes());
    }
    pool.flush_all().unwrap();
}
