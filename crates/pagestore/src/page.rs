//! Fixed-size slotted pages.
//!
//! Every node of every tree in this repository — and the space-map bitmaps,
//! and the store meta page — is one of these. The layout is the classic
//! slotted page: a small fixed header, a slot directory growing down from the
//! header, and a record heap growing up from the end of the page.
//!
//! ```text
//! 0..8    page LSN (= state identifier, §5.2 of the paper)
//! 8       page type
//! 9       flags (bit 0: freed tombstone, set when de-allocation is a
//!                node update, §5.2.2(b))
//! 10..12  slot count
//! 12..14  heap top (lowest offset occupied by a record)
//! 14..16  fragmented bytes (reclaimable by compaction)
//! 16..    slot directory: 4 bytes per slot (offset u16, length u16)
//! ...     free space
//! ...     record heap, grows downward from PAGE_SIZE
//! ```
//!
//! Records are addressed by *slot index* and slots are kept dense: removing a
//! slot shifts later slots down. Trees rely on this to keep entries sorted by
//! slot index.

use crate::error::{StoreError, StoreResult};
use crate::ids::{Lsn, PageId};

/// Size of every page in the store, in bytes.
pub const PAGE_SIZE: usize = 4096;

/// Size of the fixed page header preceding the slot directory.
pub const HEADER_SIZE: usize = 16;

const OFF_LSN: usize = 0;
const OFF_TYPE: usize = 8;
const OFF_FLAGS: usize = 9;
const OFF_SLOT_COUNT: usize = 10;
const OFF_HEAP_TOP: usize = 12;
const OFF_FRAG: usize = 14;

/// Flag bit recording that the page has been de-allocated, for the
/// "de-allocation is a node update" policy of §5.2.2(b).
pub const FLAG_FREED: u8 = 0b0000_0001;

/// What a page is used for. Stored in the header so that recovery and
/// debugging tools can interpret raw pages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum PageType {
    /// Unformatted / freed page.
    Free = 0,
    /// The store meta page (page 0).
    Meta = 1,
    /// A space-map bitmap page.
    SpaceMap = 2,
    /// A tree node (any tree, any level; trees keep their own node header in
    /// slot 0).
    Node = 3,
}

impl PageType {
    /// Decode from the stored byte.
    pub fn from_u8(b: u8) -> StoreResult<PageType> {
        match b {
            0 => Ok(PageType::Free),
            1 => Ok(PageType::Meta),
            2 => Ok(PageType::SpaceMap),
            3 => Ok(PageType::Node),
            other => Err(StoreError::Corrupt(format!("bad page type byte {other}"))),
        }
    }
}

/// A single fixed-size slotted page.
///
/// `Page` is a plain byte container with structured accessors; it knows
/// nothing about latching (see [`crate::latch`]) or durability (see
/// [`crate::buffer`]).
pub struct Page {
    buf: Box<[u8]>,
}

impl Clone for Page {
    fn clone(&self) -> Self {
        Page {
            buf: self.buf.clone(),
        }
    }
}

impl Page {
    /// A freshly formatted, empty page of the given type with LSN zero.
    pub fn new(ty: PageType) -> Page {
        let mut p = Page {
            buf: vec![0u8; PAGE_SIZE].into_boxed_slice(),
        };
        p.format(ty);
        p
    }

    /// Reset the page to the freshly-formatted empty state, keeping nothing.
    /// The LSN is reset to zero; callers that log a format operation will set
    /// the LSN right after.
    pub fn format(&mut self, ty: PageType) {
        self.buf.fill(0);
        self.buf[OFF_TYPE] = ty as u8;
        self.put_u16(OFF_HEAP_TOP, PAGE_SIZE as u16);
    }

    /// Construct a page from raw bytes (e.g. read from disk).
    pub fn from_bytes(bytes: &[u8]) -> StoreResult<Page> {
        if bytes.len() != PAGE_SIZE {
            return Err(StoreError::Corrupt(format!(
                "page image has {} bytes, expected {PAGE_SIZE}",
                bytes.len()
            )));
        }
        Ok(Page {
            buf: bytes.to_vec().into_boxed_slice(),
        })
    }

    /// The raw page image (for writing to disk or full-page logging).
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Overwrite this page with a full image (redo of a full-page log record).
    pub fn set_bytes(&mut self, bytes: &[u8]) {
        assert_eq!(bytes.len(), PAGE_SIZE);
        self.buf.copy_from_slice(bytes);
    }

    // ---- header accessors -------------------------------------------------

    /// The page LSN — the state identifier of §5.2.
    pub fn lsn(&self) -> Lsn {
        Lsn(self.get_u64(OFF_LSN))
    }

    /// Stamp the page with the LSN of the log record describing its latest
    /// update (WAL protocol bookkeeping).
    pub fn set_lsn(&mut self, lsn: Lsn) {
        self.put_u64(OFF_LSN, lsn.0);
    }

    /// The stored page type.
    pub fn page_type(&self) -> StoreResult<PageType> {
        PageType::from_u8(self.buf[OFF_TYPE])
    }

    /// Change the stored page type (used when allocating a free page as a
    /// node, and when freeing).
    pub fn set_page_type(&mut self, ty: PageType) {
        self.buf[OFF_TYPE] = ty as u8;
    }

    /// Header flag byte.
    pub fn flags(&self) -> u8 {
        self.buf[OFF_FLAGS]
    }

    /// Replace the header flag byte.
    pub fn set_flags(&mut self, flags: u8) {
        self.buf[OFF_FLAGS] = flags;
    }

    /// Whether the freed-tombstone flag is set (§5.2.2(b)).
    pub fn is_freed(&self) -> bool {
        self.flags() & FLAG_FREED != 0
    }

    /// Number of live slots.
    pub fn slot_count(&self) -> u16 {
        self.get_u16(OFF_SLOT_COUNT)
    }

    fn heap_top(&self) -> usize {
        self.get_u16(OFF_HEAP_TOP) as usize
    }

    fn frag_bytes(&self) -> usize {
        self.get_u16(OFF_FRAG) as usize
    }

    fn slots_end(&self) -> usize {
        HEADER_SIZE + 4 * self.slot_count() as usize
    }

    /// Bytes available for new records *including* their slot entries, after
    /// compaction if necessary.
    pub fn free_space(&self) -> usize {
        (self.heap_top() - self.slots_end()) + self.frag_bytes()
    }

    /// Bytes available without compaction.
    pub fn contiguous_free_space(&self) -> usize {
        self.heap_top() - self.slots_end()
    }

    /// Bytes occupied by live records plus their slot entries. A cheap
    /// utilization measure used by the consolidation trigger (§3.3).
    pub fn used_space(&self) -> usize {
        let mut used = 0;
        for i in 0..self.slot_count() {
            used += 4 + self.slot(i).1 as usize;
        }
        used
    }

    // ---- slot operations ---------------------------------------------------

    fn slot(&self, idx: u16) -> (u16, u16) {
        let base = HEADER_SIZE + 4 * idx as usize;
        (self.get_u16(base), self.get_u16(base + 2))
    }

    fn set_slot(&mut self, idx: u16, off: u16, len: u16) {
        let base = HEADER_SIZE + 4 * idx as usize;
        self.put_u16(base, off);
        self.put_u16(base + 2, len);
    }

    /// Read the record in slot `idx`.
    pub fn get(&self, idx: u16) -> StoreResult<&[u8]> {
        if idx >= self.slot_count() {
            return Err(StoreError::BadSlot {
                page: PageId::INVALID,
                slot: idx,
            });
        }
        let (off, len) = self.slot(idx);
        Ok(&self.buf[off as usize..off as usize + len as usize])
    }

    /// Insert `bytes` as a new record at slot index `idx`, shifting later
    /// slots up by one. `idx` may equal `slot_count()` (append).
    pub fn insert(&mut self, idx: u16, bytes: &[u8]) -> StoreResult<()> {
        let n = self.slot_count();
        if idx > n {
            return Err(StoreError::BadSlot {
                page: PageId::INVALID,
                slot: idx,
            });
        }
        let need = bytes.len() + 4;
        if need > self.free_space() {
            return Err(StoreError::PageFull {
                page: PageId::INVALID,
                need,
                free: self.free_space(),
            });
        }
        if bytes.len() + 4 > self.contiguous_free_space() {
            self.compact();
        }
        // Carve the record out of the heap.
        let new_top = self.heap_top() - bytes.len();
        self.buf[new_top..new_top + bytes.len()].copy_from_slice(bytes);
        self.put_u16(OFF_HEAP_TOP, new_top as u16);
        // Shift the slot directory to open slot `idx`.
        let start = HEADER_SIZE + 4 * idx as usize;
        let end = HEADER_SIZE + 4 * n as usize;
        self.buf.copy_within(start..end, start + 4);
        self.set_slot(idx, new_top as u16, bytes.len() as u16);
        self.put_u16(OFF_SLOT_COUNT, n + 1);
        Ok(())
    }

    /// Remove the record at slot `idx`, shifting later slots down. Returns
    /// the removed bytes so callers can build undo information.
    pub fn remove(&mut self, idx: u16) -> StoreResult<Vec<u8>> {
        let n = self.slot_count();
        if idx >= n {
            return Err(StoreError::BadSlot {
                page: PageId::INVALID,
                slot: idx,
            });
        }
        let (off, len) = self.slot(idx);
        let bytes = self.buf[off as usize..(off + len) as usize].to_vec();
        if off as usize == self.heap_top() {
            // Record sits at the heap frontier: reclaim it directly.
            self.put_u16(OFF_HEAP_TOP, off + len);
        } else {
            self.put_u16(OFF_FRAG, (self.frag_bytes() + len as usize) as u16);
        }
        let start = HEADER_SIZE + 4 * (idx + 1) as usize;
        let end = HEADER_SIZE + 4 * n as usize;
        self.buf.copy_within(start..end, start - 4);
        self.put_u16(OFF_SLOT_COUNT, n - 1);
        Ok(bytes)
    }

    /// Replace the record at slot `idx` with `bytes`, preserving slot order.
    /// Returns the previous bytes for undo information.
    pub fn update(&mut self, idx: u16, bytes: &[u8]) -> StoreResult<Vec<u8>> {
        let n = self.slot_count();
        if idx >= n {
            return Err(StoreError::BadSlot {
                page: PageId::INVALID,
                slot: idx,
            });
        }
        let (off, len) = self.slot(idx);
        let old = self.buf[off as usize..(off + len) as usize].to_vec();
        if bytes.len() == len as usize {
            // In-place overwrite, no heap churn.
            self.buf[off as usize..off as usize + bytes.len()].copy_from_slice(bytes);
            return Ok(old);
        }
        // Grow/shrink: free then re-insert at the same index. Check space
        // counting the freed bytes as available.
        let need = bytes.len() + 4;
        if need > self.free_space() + len as usize + 4 {
            return Err(StoreError::PageFull {
                page: PageId::INVALID,
                need,
                free: self.free_space() + len as usize + 4,
            });
        }
        self.remove(idx)?;
        self.insert(idx, bytes)?;
        Ok(old)
    }

    /// Rewrite the record heap to eliminate fragmentation. Slot indexes are
    /// unchanged.
    pub fn compact(&mut self) {
        let n = self.slot_count();
        let mut scratch = Vec::with_capacity(n as usize);
        for i in 0..n {
            let (off, len) = self.slot(i);
            scratch.push(self.buf[off as usize..(off + len) as usize].to_vec());
        }
        let mut top = PAGE_SIZE;
        for (i, rec) in scratch.iter().enumerate() {
            top -= rec.len();
            self.buf[top..top + rec.len()].copy_from_slice(rec);
            self.set_slot(i as u16, top as u16, rec.len() as u16);
        }
        self.put_u16(OFF_HEAP_TOP, top as u16);
        self.put_u16(OFF_FRAG, 0);
    }

    // ---- keyed-entry convention (tree node pages) ---------------------------
    //
    // Tree nodes store a node header in slot 0 and *keyed entries* in slots
    // 1..: each entry is `[klen u16 LE][key bytes][payload]`, kept sorted by
    // key (plain byte order). Page operations that locate entries by key are
    // logical-within-page: they survive concurrent slot movement, which
    // slot-number addressing would not (this is what "page-oriented UNDO"
    // requires in practice).

    /// Decode the key of a keyed entry.
    pub fn entry_key(bytes: &[u8]) -> &[u8] {
        let klen = u16::from_le_bytes([bytes[0], bytes[1]]) as usize;
        &bytes[2..2 + klen]
    }

    /// Decode the payload of a keyed entry.
    pub fn entry_payload(bytes: &[u8]) -> &[u8] {
        let klen = u16::from_le_bytes([bytes[0], bytes[1]]) as usize;
        &bytes[2 + klen..]
    }

    /// Build a keyed entry from key and payload.
    pub fn make_entry(key: &[u8], payload: &[u8]) -> Vec<u8> {
        let mut v = Vec::with_capacity(2 + key.len() + payload.len());
        v.extend_from_slice(&(key.len() as u16).to_le_bytes());
        v.extend_from_slice(key);
        v.extend_from_slice(payload);
        v
    }

    /// Number of keyed entries (slots after the header slot).
    pub fn entry_count(&self) -> u16 {
        self.slot_count().saturating_sub(1)
    }

    /// Borrow the full record bytes at `slot` without the bounds-checked
    /// `Result` of [`Page::get`]. `slot` must be `< slot_count()` — the
    /// in-place probe helpers below only produce such slots.
    #[inline]
    fn record_at(&self, slot: u16) -> &[u8] {
        debug_assert!(slot < self.slot_count());
        let (off, len) = self.slot(slot);
        &self.buf[off as usize..(off + len) as usize]
    }

    /// Borrow the key of the keyed entry at `slot`, straight out of the
    /// frame. `slot` must be in `1..slot_count()`.
    #[inline]
    pub fn entry_key_at(&self, slot: u16) -> &[u8] {
        debug_assert!(slot >= 1);
        Self::entry_key(self.record_at(slot))
    }

    /// Borrow the payload of the keyed entry at `slot`, straight out of the
    /// frame. `slot` must be in `1..slot_count()`.
    #[inline]
    pub fn entry_payload_at(&self, slot: u16) -> &[u8] {
        debug_assert!(slot >= 1);
        Self::entry_payload(self.record_at(slot))
    }

    /// In-place binary search over the keyed entries: every probe compares
    /// `key` against the entry bytes where they sit in the frame — no record
    /// fetch, no per-probe `Result`. `Ok(slot)` when found, `Err(slot)`
    /// giving the insertion slot otherwise.
    #[inline]
    pub fn keyed_probe(&self, key: &[u8]) -> Result<u16, u16> {
        let n = self.slot_count();
        let mut lo = 1u16;
        let mut hi = n;
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            match self.entry_key_at(mid).cmp(key) {
                std::cmp::Ordering::Less => lo = mid + 1,
                std::cmp::Ordering::Greater => hi = mid,
                std::cmp::Ordering::Equal => return Ok(mid),
            }
        }
        Err(lo)
    }

    /// Combined find-and-borrow: locate `key` and return its slot plus the
    /// full entry bytes from the probe that found it, or `None` when absent.
    /// The single decode serves point reads that previously paid
    /// `keyed_find` + `get(slot)`.
    #[inline]
    pub fn keyed_lookup(&self, key: &[u8]) -> Option<(u16, &[u8])> {
        match self.keyed_probe(key) {
            Ok(slot) => Some((slot, self.record_at(slot))),
            Err(_) => None,
        }
    }

    /// Binary-search the keyed entries for `key`. `Ok(slot)` when found,
    /// `Err(slot)` giving the insertion slot otherwise. Slot indexes are
    /// raw page slots (so ≥ 1).
    pub fn keyed_find(&self, key: &[u8]) -> StoreResult<Result<u16, u16>> {
        Ok(self.keyed_probe(key))
    }

    /// The entry whose key is the greatest ≤ `key` (B-link routing: "the
    /// child node with the largest index term key value smaller than the
    /// KEY", §5.3). `None` if every entry key exceeds `key` or there are no
    /// entries.
    pub fn keyed_floor(&self, key: &[u8]) -> StoreResult<Option<u16>> {
        Ok(match self.keyed_find(key)? {
            Ok(slot) => Some(slot),
            Err(ins) if ins > 1 => Some(ins - 1),
            Err(_) => None,
        })
    }

    /// Insert a keyed entry at its sorted position. Fails if the key exists.
    pub fn keyed_insert(&mut self, bytes: &[u8]) -> StoreResult<u16> {
        let key = Self::entry_key(bytes);
        match self.keyed_find(key)? {
            Ok(_) => Err(StoreError::Corrupt(format!(
                "keyed insert of duplicate key {:02x?}",
                key
            ))),
            Err(slot) => {
                self.insert(slot, bytes)?;
                Ok(slot)
            }
        }
    }

    /// Remove the keyed entry for `key`, returning its bytes.
    pub fn keyed_remove(&mut self, key: &[u8]) -> StoreResult<Vec<u8>> {
        match self.keyed_find(key)? {
            Ok(slot) => self.remove(slot),
            Err(_) => Err(StoreError::Corrupt(format!(
                "keyed remove of absent key {:02x?}",
                key
            ))),
        }
    }

    /// Replace the keyed entry whose key matches `bytes`'s key, returning
    /// the previous bytes.
    pub fn keyed_update(&mut self, bytes: &[u8]) -> StoreResult<Vec<u8>> {
        let key = Self::entry_key(bytes);
        match self.keyed_find(key)? {
            Ok(slot) => self.update(slot, bytes),
            Err(_) => Err(StoreError::Corrupt(format!(
                "keyed update of absent key {:02x?}",
                key
            ))),
        }
    }

    // ---- space-map bitmap access (SpaceMap pages only) ----------------------

    /// Number of allocation bits a single space-map page can hold.
    pub const BITS_PER_SPACEMAP_PAGE: usize = (PAGE_SIZE - HEADER_SIZE) * 8;

    /// Read allocation bit `i` of a space-map page.
    pub fn sm_get_bit(&self, i: usize) -> bool {
        debug_assert!(i < Self::BITS_PER_SPACEMAP_PAGE);
        let byte = HEADER_SIZE + i / 8;
        self.buf[byte] & (1 << (i % 8)) != 0
    }

    /// Set or clear allocation bit `i` of a space-map page.
    pub fn sm_set_bit(&mut self, i: usize, val: bool) {
        debug_assert!(i < Self::BITS_PER_SPACEMAP_PAGE);
        let byte = HEADER_SIZE + i / 8;
        if val {
            self.buf[byte] |= 1 << (i % 8);
        } else {
            self.buf[byte] &= !(1 << (i % 8));
        }
    }

    /// Find the first clear bit at or after `from`, if any. Used by the
    /// allocator's free-page scan.
    pub fn sm_find_clear(&self, from: usize) -> Option<usize> {
        (from..Self::BITS_PER_SPACEMAP_PAGE).find(|&i| !self.sm_get_bit(i))
    }

    // ---- little-endian helpers --------------------------------------------

    fn get_u16(&self, off: usize) -> u16 {
        u16::from_le_bytes([self.buf[off], self.buf[off + 1]])
    }

    fn put_u16(&mut self, off: usize, v: u16) {
        self.buf[off..off + 2].copy_from_slice(&v.to_le_bytes());
    }

    fn get_u64(&self, off: usize) -> u64 {
        let mut b = [0u8; 8];
        b.copy_from_slice(&self.buf[off..off + 8]);
        u64::from_le_bytes(b)
    }

    fn put_u64(&mut self, off: usize, v: u64) {
        self.buf[off..off + 8].copy_from_slice(&v.to_le_bytes());
    }
}

impl std::fmt::Debug for Page {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Page")
            .field("lsn", &self.lsn())
            .field("type", &self.page_type())
            .field("slots", &self.slot_count())
            .field("free", &self.free_space())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_page_is_empty() {
        let p = Page::new(PageType::Node);
        assert_eq!(p.slot_count(), 0);
        assert_eq!(p.lsn(), Lsn::ZERO);
        assert_eq!(p.page_type().unwrap(), PageType::Node);
        assert_eq!(p.free_space(), PAGE_SIZE - HEADER_SIZE);
        assert!(!p.is_freed());
    }

    #[test]
    fn insert_get_roundtrip() {
        let mut p = Page::new(PageType::Node);
        p.insert(0, b"hello").unwrap();
        p.insert(1, b"world").unwrap();
        assert_eq!(p.get(0).unwrap(), b"hello");
        assert_eq!(p.get(1).unwrap(), b"world");
        assert_eq!(p.slot_count(), 2);
    }

    #[test]
    fn insert_in_middle_shifts_slots() {
        let mut p = Page::new(PageType::Node);
        p.insert(0, b"a").unwrap();
        p.insert(1, b"c").unwrap();
        p.insert(1, b"b").unwrap();
        assert_eq!(p.get(0).unwrap(), b"a");
        assert_eq!(p.get(1).unwrap(), b"b");
        assert_eq!(p.get(2).unwrap(), b"c");
    }

    #[test]
    fn remove_returns_bytes_and_shifts() {
        let mut p = Page::new(PageType::Node);
        p.insert(0, b"a").unwrap();
        p.insert(1, b"b").unwrap();
        p.insert(2, b"c").unwrap();
        let removed = p.remove(1).unwrap();
        assert_eq!(removed, b"b");
        assert_eq!(p.slot_count(), 2);
        assert_eq!(p.get(0).unwrap(), b"a");
        assert_eq!(p.get(1).unwrap(), b"c");
    }

    #[test]
    fn update_same_len_in_place() {
        let mut p = Page::new(PageType::Node);
        p.insert(0, b"abc").unwrap();
        let free_before = p.free_space();
        let old = p.update(0, b"xyz").unwrap();
        assert_eq!(old, b"abc");
        assert_eq!(p.get(0).unwrap(), b"xyz");
        assert_eq!(p.free_space(), free_before);
    }

    #[test]
    fn update_grow_and_shrink() {
        let mut p = Page::new(PageType::Node);
        p.insert(0, b"short").unwrap();
        p.insert(1, b"other").unwrap();
        let old = p.update(0, b"much longer record").unwrap();
        assert_eq!(old, b"short");
        assert_eq!(p.get(0).unwrap(), b"much longer record");
        assert_eq!(p.get(1).unwrap(), b"other");
        let old2 = p.update(0, b"s").unwrap();
        assert_eq!(old2, b"much longer record");
        assert_eq!(p.get(0).unwrap(), b"s");
    }

    #[test]
    fn fill_until_full_then_error() {
        let mut p = Page::new(PageType::Node);
        let rec = [7u8; 100];
        let mut n = 0u16;
        loop {
            match p.insert(n, &rec) {
                Ok(()) => n += 1,
                Err(StoreError::PageFull { .. }) => break,
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        // 4096 - 16 = 4080 usable; each record costs 104 bytes.
        assert_eq!(n as usize, 4080 / 104);
        assert!(p.free_space() < 104);
    }

    #[test]
    fn compaction_reclaims_fragmentation() {
        let mut p = Page::new(PageType::Node);
        for i in 0..10 {
            p.insert(i, &[i as u8; 50]).unwrap();
        }
        // Remove interior records to create fragmentation.
        for _ in 0..5 {
            p.remove(0).unwrap();
        }
        assert!(p.free_space() > p.contiguous_free_space());
        p.compact();
        assert_eq!(p.free_space(), p.contiguous_free_space());
        for i in 0..5 {
            assert_eq!(p.get(i).unwrap(), &[(i + 5) as u8; 50]);
        }
    }

    #[test]
    fn insert_triggers_compaction_automatically() {
        let mut p = Page::new(PageType::Node);
        // Two big records filling most of the page.
        let big = vec![1u8; 1800];
        p.insert(0, &big).unwrap();
        p.insert(1, &big).unwrap();
        // Removing slot 0 leaves a fragmented hole (slot 1's record sits at
        // the frontier boundary below slot 0's record).
        p.remove(0).unwrap();
        // A new record bigger than contiguous space but smaller than total
        // free must still fit.
        let rec = vec![2u8; 1900];
        assert!(rec.len() + 4 > p.contiguous_free_space() || p.frag_bytes() == 0);
        p.insert(1, &rec).unwrap();
        assert_eq!(p.get(0).unwrap(), &big[..]);
        assert_eq!(p.get(1).unwrap(), &rec[..]);
    }

    #[test]
    fn bytes_roundtrip() {
        let mut p = Page::new(PageType::Meta);
        p.insert(0, b"meta-record").unwrap();
        p.set_lsn(Lsn(99));
        let q = Page::from_bytes(p.as_bytes()).unwrap();
        assert_eq!(q.lsn(), Lsn(99));
        assert_eq!(q.get(0).unwrap(), b"meta-record");
        assert_eq!(q.page_type().unwrap(), PageType::Meta);
    }

    #[test]
    fn freed_flag() {
        let mut p = Page::new(PageType::Node);
        p.set_flags(p.flags() | FLAG_FREED);
        assert!(p.is_freed());
    }

    #[test]
    fn bad_slot_errors() {
        let mut p = Page::new(PageType::Node);
        assert!(matches!(p.get(0), Err(StoreError::BadSlot { .. })));
        assert!(matches!(p.remove(0), Err(StoreError::BadSlot { .. })));
        assert!(matches!(p.insert(1, b"x"), Err(StoreError::BadSlot { .. })));
        assert!(matches!(p.update(0, b"x"), Err(StoreError::BadSlot { .. })));
    }

    #[test]
    fn entry_codec_roundtrip() {
        let e = Page::make_entry(b"key", b"payload");
        assert_eq!(Page::entry_key(&e), b"key");
        assert_eq!(Page::entry_payload(&e), b"payload");
        let empty_key = Page::make_entry(b"", b"p");
        assert_eq!(Page::entry_key(&empty_key), b"");
        assert_eq!(Page::entry_payload(&empty_key), b"p");
    }

    #[test]
    fn keyed_entries_stay_sorted() {
        let mut p = Page::new(PageType::Node);
        p.insert(0, b"hdr").unwrap();
        for k in ["mm", "cc", "zz", "aa", "qq"] {
            p.keyed_insert(&Page::make_entry(k.as_bytes(), b""))
                .unwrap();
        }
        let keys: Vec<&[u8]> = (1..p.slot_count())
            .map(|i| Page::entry_key(p.get(i).unwrap()))
            .collect();
        assert_eq!(keys, vec![&b"aa"[..], b"cc", b"mm", b"qq", b"zz"]);
        assert_eq!(p.entry_count(), 5);
    }

    #[test]
    fn keyed_find_and_floor() {
        let mut p = Page::new(PageType::Node);
        p.insert(0, b"hdr").unwrap();
        for k in ["bb", "dd", "ff"] {
            p.keyed_insert(&Page::make_entry(k.as_bytes(), b""))
                .unwrap();
        }
        assert_eq!(p.keyed_find(b"dd").unwrap(), Ok(2));
        assert_eq!(p.keyed_find(b"cc").unwrap(), Err(2));
        assert_eq!(p.keyed_find(b"a").unwrap(), Err(1));
        assert_eq!(p.keyed_find(b"zz").unwrap(), Err(4));
        // floor: greatest entry ≤ key (the §5.3 routing rule).
        assert_eq!(p.keyed_floor(b"dd").unwrap(), Some(2));
        assert_eq!(p.keyed_floor(b"ee").unwrap(), Some(2));
        assert_eq!(p.keyed_floor(b"zz").unwrap(), Some(3));
        assert_eq!(p.keyed_floor(b"a").unwrap(), None);
    }

    #[test]
    fn borrowed_accessors_agree_with_get() {
        let mut p = Page::new(PageType::Node);
        p.insert(0, b"hdr").unwrap();
        for (k, v) in [("bb", "v1"), ("dd", "v2"), ("ff", "v3")] {
            p.keyed_insert(&Page::make_entry(k.as_bytes(), v.as_bytes()))
                .unwrap();
        }
        for slot in 1..p.slot_count() {
            let e = p.get(slot).unwrap();
            assert_eq!(p.entry_key_at(slot), Page::entry_key(e));
            assert_eq!(p.entry_payload_at(slot), Page::entry_payload(e));
        }
        assert_eq!(p.keyed_probe(b"dd"), Ok(2));
        assert_eq!(p.keyed_probe(b"cc"), Err(2));
        let (slot, entry) = p.keyed_lookup(b"ff").unwrap();
        assert_eq!(slot, 3);
        assert_eq!(Page::entry_key(entry), b"ff");
        assert_eq!(Page::entry_payload(entry), b"v3");
        assert!(p.keyed_lookup(b"zz").is_none());
        assert!(p.keyed_lookup(b"a").is_none());
    }

    #[test]
    fn keyed_remove_returns_entry() {
        let mut p = Page::new(PageType::Node);
        p.insert(0, b"hdr").unwrap();
        p.keyed_insert(&Page::make_entry(b"k1", b"v1")).unwrap();
        let gone = p.keyed_remove(b"k1").unwrap();
        assert_eq!(Page::entry_payload(&gone), b"v1");
        assert_eq!(p.entry_count(), 0);
    }

    #[test]
    fn remove_at_frontier_reclaims_directly() {
        let mut p = Page::new(PageType::Node);
        p.insert(0, b"first").unwrap();
        p.insert(1, b"second").unwrap();
        // "second" is at the heap frontier (inserted last, lowest offset).
        p.remove(1).unwrap();
        assert_eq!(p.frag_bytes(), 0);
    }
}
