//! The physiological page-operation vocabulary.
//!
//! Every mutation of a page anywhere in the repository — a record insert in a
//! B-link leaf, an index-term posting, a TSB-tree time split, a space-map bit
//! flip — is expressed as one of these operations. The write-ahead log
//! (crate `pitree-wal`) records a `PageOp` for redo and its [`PageOp::invert`]
//! for undo, which is what makes the recovery manager completely tree-agnostic
//! and lets the paper's protocol "work with a range of different recovery
//! methods" (§1, §4.3).
//!
//! Operations are *physiological*: physical to a page (they name a page and a
//! slot) but logical within it (slot indexes, not byte offsets), so redo after
//! compaction still applies cleanly.

use crate::error::StoreResult;
use crate::page::{Page, PageType};

/// A single redoable/undoable mutation of one page.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PageOp {
    /// Format (or re-format) the page as an empty page of the given type.
    /// Used when a freshly allocated page becomes a tree node, and when a
    /// freed page is tombstoned.
    Format {
        /// Page type to format as.
        ty: PageType,
    },
    /// Insert `bytes` at `slot`, shifting later slots up.
    InsertSlot {
        /// Target slot index.
        slot: u16,
        /// Record content.
        bytes: Vec<u8>,
    },
    /// Remove the record at `slot`, shifting later slots down.
    RemoveSlot {
        /// Target slot index.
        slot: u16,
    },
    /// Replace the record at `slot`.
    UpdateSlot {
        /// Target slot index.
        slot: u16,
        /// New record content.
        bytes: Vec<u8>,
    },
    /// Overwrite the header flag byte (e.g. the freed tombstone of §5.2.2(b)).
    SetFlags {
        /// New flag byte.
        flags: u8,
    },
    /// Set allocation bit `bit` on a space-map page.
    SetBit {
        /// Bit index within the bitmap page.
        bit: u32,
    },
    /// Clear allocation bit `bit` on a space-map page.
    ClearBit {
        /// Bit index within the bitmap page.
        bit: u32,
    },
    /// Restore a complete page image. Produced as the inverse of `Format`,
    /// never written directly by tree code.
    FullImage {
        /// The full page image.
        bytes: Vec<u8>,
    },
    /// Insert a keyed entry (`[klen][key][payload]`) at its sorted position.
    /// Logical-within-page: redo and undo re-find the position by key, so
    /// the operation is immune to slot movement caused by other entries —
    /// the property page-oriented UNDO (§4.2) depends on.
    KeyedInsert {
        /// The full entry bytes.
        bytes: Vec<u8>,
    },
    /// Remove the keyed entry with `key`.
    KeyedRemove {
        /// The entry key.
        key: Vec<u8>,
    },
    /// Replace the keyed entry whose key matches `bytes`'s embedded key.
    KeyedUpdate {
        /// The full replacement entry bytes.
        bytes: Vec<u8>,
    },
}

impl PageOp {
    /// Apply the operation to `page`. Does **not** touch the page LSN; the
    /// logging layer stamps the LSN of the log record it wrote.
    pub fn apply(&self, page: &mut Page) -> StoreResult<()> {
        match self {
            PageOp::Format { ty } => {
                page.format(*ty);
                Ok(())
            }
            PageOp::InsertSlot { slot, bytes } => page.insert(*slot, bytes),
            PageOp::RemoveSlot { slot } => page.remove(*slot).map(|_| ()),
            PageOp::UpdateSlot { slot, bytes } => page.update(*slot, bytes).map(|_| ()),
            PageOp::SetFlags { flags } => {
                page.set_flags(*flags);
                Ok(())
            }
            PageOp::SetBit { bit } => {
                page.sm_set_bit(*bit as usize, true);
                Ok(())
            }
            PageOp::ClearBit { bit } => {
                page.sm_set_bit(*bit as usize, false);
                Ok(())
            }
            PageOp::FullImage { bytes } => {
                page.set_bytes(bytes);
                Ok(())
            }
            PageOp::KeyedInsert { bytes } => page.keyed_insert(bytes).map(|_| ()),
            PageOp::KeyedRemove { key } => page.keyed_remove(key).map(|_| ()),
            PageOp::KeyedUpdate { bytes } => page.keyed_update(bytes).map(|_| ()),
        }
    }

    /// Compute the inverse operation, given the page state *before* `apply`.
    ///
    /// `invert` then `apply` of the inverse restores the page content exactly
    /// (modulo internal heap layout, which is not semantically visible).
    pub fn invert(&self, before: &Page) -> StoreResult<PageOp> {
        Ok(match self {
            PageOp::Format { .. } => PageOp::FullImage {
                bytes: before.as_bytes().to_vec(),
            },
            PageOp::InsertSlot { slot, .. } => PageOp::RemoveSlot { slot: *slot },
            PageOp::RemoveSlot { slot } => PageOp::InsertSlot {
                slot: *slot,
                bytes: before.get(*slot)?.to_vec(),
            },
            PageOp::UpdateSlot { slot, .. } => PageOp::UpdateSlot {
                slot: *slot,
                bytes: before.get(*slot)?.to_vec(),
            },
            PageOp::SetFlags { .. } => PageOp::SetFlags {
                flags: before.flags(),
            },
            PageOp::SetBit { bit } => PageOp::ClearBit { bit: *bit },
            PageOp::ClearBit { bit } => PageOp::SetBit { bit: *bit },
            PageOp::FullImage { .. } => PageOp::FullImage {
                bytes: before.as_bytes().to_vec(),
            },
            PageOp::KeyedInsert { bytes } => PageOp::KeyedRemove {
                key: Page::entry_key(bytes).to_vec(),
            },
            PageOp::KeyedRemove { key } => {
                let slot = before.keyed_find(key)?.map_err(|_| {
                    crate::error::StoreError::Corrupt(format!(
                        "inverting removal of absent key {key:02x?}"
                    ))
                })?;
                PageOp::KeyedInsert {
                    bytes: before.get(slot)?.to_vec(),
                }
            }
            PageOp::KeyedUpdate { bytes } => {
                let key = Page::entry_key(bytes);
                let slot = before.keyed_find(key)?.map_err(|_| {
                    crate::error::StoreError::Corrupt(format!(
                        "inverting update of absent key {key:02x?}"
                    ))
                })?;
                PageOp::KeyedUpdate {
                    bytes: before.get(slot)?.to_vec(),
                }
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node_page() -> Page {
        let mut p = Page::new(PageType::Node);
        p.insert(0, b"alpha").unwrap();
        p.insert(1, b"beta").unwrap();
        p
    }

    /// Apply `op`, then apply its inverse, and check the visible content is
    /// unchanged.
    fn check_roundtrip(mut page: Page, op: PageOp) {
        let snapshot: Vec<Vec<u8>> = (0..page.slot_count())
            .map(|i| page.get(i).unwrap().to_vec())
            .collect();
        let inv = op.invert(&page).unwrap();
        op.apply(&mut page).unwrap();
        inv.apply(&mut page).unwrap();
        let after: Vec<Vec<u8>> = (0..page.slot_count())
            .map(|i| page.get(i).unwrap().to_vec())
            .collect();
        assert_eq!(snapshot, after, "inverse failed for {op:?}");
    }

    #[test]
    fn insert_invert() {
        check_roundtrip(
            node_page(),
            PageOp::InsertSlot {
                slot: 1,
                bytes: b"mid".to_vec(),
            },
        );
    }

    #[test]
    fn remove_invert() {
        check_roundtrip(node_page(), PageOp::RemoveSlot { slot: 0 });
    }

    #[test]
    fn update_invert() {
        check_roundtrip(
            node_page(),
            PageOp::UpdateSlot {
                slot: 1,
                bytes: b"changed".to_vec(),
            },
        );
    }

    #[test]
    fn format_invert_restores_full_image() {
        check_roundtrip(node_page(), PageOp::Format { ty: PageType::Free });
    }

    #[test]
    fn flags_invert() {
        check_roundtrip(node_page(), PageOp::SetFlags { flags: 0b1 });
    }

    #[test]
    fn bit_ops_invert() {
        let mut p = Page::new(PageType::SpaceMap);
        let op = PageOp::SetBit { bit: 17 };
        let inv = op.invert(&p).unwrap();
        op.apply(&mut p).unwrap();
        assert!(p.sm_get_bit(17));
        inv.apply(&mut p).unwrap();
        assert!(!p.sm_get_bit(17));
    }

    #[test]
    fn apply_order_insert_then_remove() {
        let mut p = node_page();
        PageOp::InsertSlot {
            slot: 2,
            bytes: b"gamma".to_vec(),
        }
        .apply(&mut p)
        .unwrap();
        assert_eq!(p.get(2).unwrap(), b"gamma");
        PageOp::RemoveSlot { slot: 1 }.apply(&mut p).unwrap();
        assert_eq!(p.get(1).unwrap(), b"gamma");
    }

    fn keyed_page() -> Page {
        let mut p = Page::new(PageType::Node);
        p.insert(0, b"node-header").unwrap(); // slot 0 is the header
        for k in ["bb", "dd", "ff"] {
            p.keyed_insert(&Page::make_entry(k.as_bytes(), b"v"))
                .unwrap();
        }
        p
    }

    #[test]
    fn keyed_insert_invert() {
        check_roundtrip(
            keyed_page(),
            PageOp::KeyedInsert {
                bytes: Page::make_entry(b"cc", b"v2"),
            },
        );
    }

    #[test]
    fn keyed_remove_invert() {
        check_roundtrip(
            keyed_page(),
            PageOp::KeyedRemove {
                key: b"dd".to_vec(),
            },
        );
    }

    #[test]
    fn keyed_update_invert() {
        check_roundtrip(
            keyed_page(),
            PageOp::KeyedUpdate {
                bytes: Page::make_entry(b"dd", b"changed"),
            },
        );
    }

    #[test]
    fn keyed_undo_survives_slot_movement() {
        // The property motivating keyed ops: undo applies correctly even
        // after other entries shifted this entry's slot.
        let mut p = keyed_page();
        let op = PageOp::KeyedInsert {
            bytes: Page::make_entry(b"ee", b"mine"),
        };
        let inv = op.invert(&p).unwrap();
        op.apply(&mut p).unwrap();
        // Another "transaction" inserts earlier keys, shifting slots.
        PageOp::KeyedInsert {
            bytes: Page::make_entry(b"aa", b"other"),
        }
        .apply(&mut p)
        .unwrap();
        PageOp::KeyedInsert {
            bytes: Page::make_entry(b"cc", b"other"),
        }
        .apply(&mut p)
        .unwrap();
        inv.apply(&mut p).unwrap();
        assert!(p.keyed_find(b"ee").unwrap().is_err(), "ee must be gone");
        assert!(
            p.keyed_find(b"aa").unwrap().is_ok(),
            "other entries untouched"
        );
        assert!(p.keyed_find(b"cc").unwrap().is_ok());
    }

    #[test]
    fn keyed_duplicate_and_absent_are_errors() {
        let mut p = keyed_page();
        assert!(p.keyed_insert(&Page::make_entry(b"bb", b"dup")).is_err());
        assert!(p.keyed_remove(b"zz").is_err());
        assert!(p.keyed_update(&Page::make_entry(b"zz", b"x")).is_err());
        assert!(PageOp::KeyedRemove {
            key: b"zz".to_vec()
        }
        .invert(&p)
        .is_err());
    }

    #[test]
    fn sm_find_clear_scans() {
        let mut p = Page::new(PageType::SpaceMap);
        for i in 0..5 {
            p.sm_set_bit(i, true);
        }
        assert_eq!(p.sm_find_clear(0), Some(5));
        assert_eq!(p.sm_find_clear(5), Some(5));
        assert_eq!(p.sm_find_clear(6), Some(6));
    }
}
