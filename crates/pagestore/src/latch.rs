//! S / U / X latches (§4.1 of the paper).
//!
//! Latches are semaphores whose holders' usage pattern guarantees the absence
//! of deadlock: resources are latched in search order (parents before
//! children, containing nodes before contained nodes, space-management
//! information last), and promotion is only ever performed from U mode, never
//! from S mode. Latches never involve the database lock manager and never
//! conflict with database locks (`pitree-txnlock`).
//!
//! Modes, following §4.1.1 and \[Gray et al. 1976\]:
//!
//! * **S** — shared. Compatible with S and U.
//! * **U** — update. Allows sharing by readers but conflicts with U and X;
//!   since at most one U holder exists, U→X promotion cannot deadlock with a
//!   concurrent promoter (promotion from S is the classic deadlock the paper
//!   warns about, and is not offered by this API at all).
//! * **X** — exclusive.
//!
//! [`Latch`] is a container like `RwLock<T>`: data is only reachable through
//! a guard, so "read while holding at least S" and "write only while holding
//! X" are enforced by the type system. A [`UGuard`] can be promoted in place
//! with [`UGuard::promote`]; per the paper, callers must only promote while
//! holding no latch ordered after this one.

use crate::sync::{Condvar, Mutex};
use pitree_obs::{Counter, EventKind, Hist, Recorder, Stopwatch};
use std::cell::UnsafeCell;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicU64, Ordering};

/// Debug-build latch-ordering checks.
///
/// The deadlock-freedom argument of §4.1 rests on every thread acquiring
/// latches in search order. Latches constructed with [`Latch::new_ordered`]
/// carry a *rank* encoding that order (parents rank ≤ children, containing
/// nodes ≤ contained, space management last); in debug builds a thread-local
/// stack of held ranks is maintained and any blocking acquisition whose rank
/// is **below** the highest rank currently held by the same thread panics
/// immediately instead of risking an undetectable latch deadlock.
/// `try_*` acquisitions are exempt: conditional acquisition is exactly the
/// protocol's escape hatch for climbing *up* a saved path (§5.2.2(b)).
/// Unranked latches (plain [`Latch::new`]) are never checked.
pub mod order {
    use std::cell::RefCell;

    thread_local! {
        static HELD: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
    }

    /// Rank meaning "not participating in order checking".
    pub const UNRANKED: u64 = u64::MAX;

    pub(super) fn check_and_push(rank: u64) {
        if rank == UNRANKED || !cfg!(debug_assertions) {
            return;
        }
        HELD.with(|h| {
            let mut held = h.borrow_mut();
            if let Some(&max) = held.iter().max() {
                assert!(
                    rank >= max,
                    "latch order violation: blocking acquisition of rank {rank} \
                     while holding rank {max} (acquire in search order, or use try_*)"
                );
            }
            held.push(rank);
        });
    }

    /// Record a `try_*` acquisition: tracked (so later blocking acquisitions
    /// see it) but never checked itself.
    pub(super) fn push_unchecked(rank: u64) {
        if rank == UNRANKED || !cfg!(debug_assertions) {
            return;
        }
        HELD.with(|h| h.borrow_mut().push(rank));
    }

    pub(super) fn pop(rank: u64) {
        if rank == UNRANKED || !cfg!(debug_assertions) {
            return;
        }
        HELD.with(|h| {
            let mut held = h.borrow_mut();
            if let Some(pos) = held.iter().rposition(|&r| r == rank) {
                held.remove(pos);
            }
        });
    }

    /// Ranks currently held by this thread (diagnostics / tests).
    pub fn held_ranks() -> Vec<u64> {
        HELD.with(|h| h.borrow().clone())
    }
}

/// Process-wide latch-contention counters, for the concurrency experiments:
/// on a single-core host, wall-clock throughput cannot expose blocking, but
/// the number of acquisitions that had to *wait* can.
pub mod contention {
    use super::*;

    static WAITS: AtomicU64 = AtomicU64::new(0);

    #[inline]
    pub(super) fn record_wait() {
        WAITS.fetch_add(1, Ordering::Relaxed);
    }

    /// Total latch acquisitions that blocked since the last [`reset`].
    pub fn waits() -> u64 {
        WAITS.load(Ordering::Relaxed)
    }

    /// Zero the counter.
    pub fn reset() {
        WAITS.store(0, Ordering::Relaxed);
    }
}

/// Latch acquisition modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LatchMode {
    /// Shared.
    S,
    /// Update: read access now, intent to possibly promote to X.
    U,
    /// Exclusive.
    X,
}

#[derive(Default)]
struct State {
    /// Number of S holders.
    readers: u32,
    /// Whether a U holder exists (at most one).
    u_held: bool,
    /// Whether an X holder exists.
    x_held: bool,
    /// Whether the U holder is waiting to promote; blocks new S acquisitions
    /// so the promotion drains.
    promoting: bool,
    /// Number of threads blocked waiting for X; blocks new S acquisitions to
    /// avoid writer starvation.
    x_waiting: u32,
}

impl State {
    fn can_s(&self) -> bool {
        !self.x_held && !self.promoting && self.x_waiting == 0
    }
    fn can_u(&self) -> bool {
        !self.x_held && !self.u_held
    }
    fn can_x(&self) -> bool {
        !self.x_held && !self.u_held && self.readers == 0
    }
}

/// Per-latch observability handles, pre-resolved at construction so the
/// hot path never touches the registry's name map. Buffer-pool frame
/// latches are observed ([`Latch::new_observed`]); ad-hoc latches are
/// not and pay only an `Option` check.
#[derive(Clone)]
struct LatchObs {
    rec: Recorder,
    acq_s: Counter,
    acq_u: Counter,
    acq_x: Counter,
    promotes: Counter,
    waits: Counter,
    wait_ns: Hist,
}

impl LatchObs {
    fn new(rec: &Recorder) -> LatchObs {
        LatchObs {
            acq_s: rec.counter("latch.acquire_s"),
            acq_u: rec.counter("latch.acquire_u"),
            acq_x: rec.counter("latch.acquire_x"),
            promotes: rec.counter("latch.promotes"),
            waits: rec.counter("latch.waits"),
            wait_ns: rec.hist("latch.wait_ns"),
            rec: rec.clone(),
        }
    }

    fn acquired(&self, kind: EventKind, counter: &Counter, waited: Option<Stopwatch>, rank: u64) {
        counter.inc();
        if let Some(t) = waited {
            self.waits.inc();
            self.wait_ns.record(t.elapsed_ns());
        }
        self.rec.event(kind, waited.is_some() as u64, rank);
    }

    fn released(&self, mode: u64, rank: u64) {
        self.rec.event(EventKind::LatchRelease, mode, rank);
    }
}

/// A latch-protected value. See the module docs for the protocol.
pub struct Latch<T> {
    state: Mutex<State>,
    cv: Condvar,
    rank: u64,
    obs: Option<LatchObs>,
    data: UnsafeCell<T>,
}

// Safety: access to `data` is mediated by the latch protocol — shared refs
// only under S/U, exclusive refs only under X.
unsafe impl<T: Send> Send for Latch<T> {}
unsafe impl<T: Send + Sync> Sync for Latch<T> {}

impl<T> std::fmt::Debug for Latch<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Latch")
            .field("rank", &self.rank)
            .finish_non_exhaustive()
    }
}

impl<T> Latch<T> {
    /// Wrap `value` in a latch that does not participate in order checking.
    pub fn new(value: T) -> Latch<T> {
        Latch {
            state: Mutex::new(State::default()),
            cv: Condvar::new(),
            rank: order::UNRANKED,
            obs: None,
            data: UnsafeCell::new(value),
        }
    }

    /// Wrap `value` in a latch with an ordering `rank`; debug builds panic
    /// on blocking acquisitions that violate search order (see [`order`]).
    pub fn new_ordered(value: T, rank: u64) -> Latch<T> {
        Latch {
            state: Mutex::new(State::default()),
            cv: Condvar::new(),
            rank,
            obs: None,
            data: UnsafeCell::new(value),
        }
    }

    /// Wrap `value` in a latch that records every acquisition, wait, and
    /// release into `rec` (`latch.*` counters, `latch.wait_ns` histogram,
    /// `latch_*` events). The buffer pool observes its frame latches this
    /// way; unobserved latches pay only an `Option` check.
    pub fn new_observed(value: T, rank: u64, rec: &Recorder) -> Latch<T> {
        Latch {
            state: Mutex::new(State::default()),
            cv: Condvar::new(),
            rank,
            obs: Some(LatchObs::new(rec)),
            data: UnsafeCell::new(value),
        }
    }

    /// This latch's ordering rank ([`order::UNRANKED`] when unchecked).
    pub fn rank(&self) -> u64 {
        self.rank
    }

    /// Acquire in S mode, blocking.
    pub fn s(&self) -> SGuard<'_, T> {
        order::check_and_push(self.rank);
        let mut st = self.state.lock();
        let mut waited = None;
        if !st.can_s() {
            contention::record_wait();
            waited = Some(Stopwatch::start());
            while !st.can_s() {
                st = self.cv.wait(st);
            }
        }
        st.readers += 1;
        drop(st);
        if let Some(o) = &self.obs {
            o.acquired(EventKind::LatchAcquireS, &o.acq_s, waited, self.rank);
        }
        SGuard { latch: self }
    }

    /// Try to acquire in S mode without blocking.
    pub fn try_s(&self) -> Option<SGuard<'_, T>> {
        let mut st = self.state.lock();
        if st.can_s() {
            st.readers += 1;
            drop(st);
            order::push_unchecked(self.rank);
            if let Some(o) = &self.obs {
                o.acquired(EventKind::LatchAcquireS, &o.acq_s, None, self.rank);
            }
            Some(SGuard { latch: self })
        } else {
            None
        }
    }

    /// Acquire in U mode, blocking. U allows concurrent S readers but
    /// excludes other U and X holders.
    pub fn u(&self) -> UGuard<'_, T> {
        order::check_and_push(self.rank);
        let mut st = self.state.lock();
        let mut waited = None;
        if !st.can_u() {
            contention::record_wait();
            waited = Some(Stopwatch::start());
            while !st.can_u() {
                st = self.cv.wait(st);
            }
        }
        st.u_held = true;
        drop(st);
        if let Some(o) = &self.obs {
            o.acquired(EventKind::LatchAcquireU, &o.acq_u, waited, self.rank);
        }
        UGuard { latch: self }
    }

    /// Try to acquire in U mode without blocking.
    pub fn try_u(&self) -> Option<UGuard<'_, T>> {
        let mut st = self.state.lock();
        if st.can_u() {
            st.u_held = true;
            drop(st);
            order::push_unchecked(self.rank);
            if let Some(o) = &self.obs {
                o.acquired(EventKind::LatchAcquireU, &o.acq_u, None, self.rank);
            }
            Some(UGuard { latch: self })
        } else {
            None
        }
    }

    /// Acquire in X mode, blocking.
    pub fn x(&self) -> XGuard<'_, T> {
        order::check_and_push(self.rank);
        let mut st = self.state.lock();
        st.x_waiting += 1;
        let mut waited = None;
        if !st.can_x() {
            contention::record_wait();
            waited = Some(Stopwatch::start());
            while !st.can_x() {
                st = self.cv.wait(st);
            }
        }
        st.x_waiting -= 1;
        st.x_held = true;
        drop(st);
        if let Some(o) = &self.obs {
            o.acquired(EventKind::LatchAcquireX, &o.acq_x, waited, self.rank);
        }
        XGuard { latch: self }
    }

    /// Try to acquire in X mode without blocking.
    pub fn try_x(&self) -> Option<XGuard<'_, T>> {
        let mut st = self.state.lock();
        if st.can_x() {
            st.x_held = true;
            drop(st);
            order::push_unchecked(self.rank);
            if let Some(o) = &self.obs {
                o.acquired(EventKind::LatchAcquireX, &o.acq_x, None, self.rank);
            }
            Some(XGuard { latch: self })
        } else {
            None
        }
    }

    /// Whether any holder is present (diagnostics only; racy by nature).
    pub fn is_held(&self) -> bool {
        let st = self.state.lock();
        st.x_held || st.u_held || st.readers > 0
    }

    /// Get the protected value without latching. Only sound when the caller
    /// has unique access (e.g. during single-threaded recovery or pool
    /// teardown).
    pub fn get_mut(&mut self) -> &mut T {
        self.data.get_mut()
    }
}

/// Shared-mode guard.
pub struct SGuard<'a, T> {
    latch: &'a Latch<T>,
}

impl<T> std::fmt::Debug for SGuard<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SGuard")
            .field("rank", &self.latch.rank)
            .finish_non_exhaustive()
    }
}

impl<T> Deref for SGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // Safety: S mode held — no X holder can exist.
        unsafe { &*self.latch.data.get() }
    }
}

impl<T> Drop for SGuard<'_, T> {
    fn drop(&mut self) {
        let mut st = self.latch.state.lock();
        st.readers -= 1;
        drop(st);
        order::pop(self.latch.rank);
        if let Some(o) = &self.latch.obs {
            o.released(0, self.latch.rank);
        }
        self.latch.cv.notify_all();
    }
}

/// Update-mode guard: read access plus the exclusive right to promote.
pub struct UGuard<'a, T> {
    latch: &'a Latch<T>,
}

impl<T> std::fmt::Debug for UGuard<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("UGuard")
            .field("rank", &self.latch.rank)
            .finish_non_exhaustive()
    }
}

impl<'a, T> UGuard<'a, T> {
    /// Promote to X mode, waiting for concurrent readers to drain.
    ///
    /// Safe against latch deadlock because at most one U holder exists and S
    /// holders never promote; callers must obey the paper's rule of not
    /// holding latches ordered after this one while promoting (§4.1.1).
    pub fn promote(self) -> XGuard<'a, T> {
        let latch = self.latch;
        let mut waited = None;
        {
            let mut st = latch.state.lock();
            st.promoting = true;
            if st.readers > 0 || st.x_held {
                contention::record_wait();
                waited = Some(Stopwatch::start());
                while st.readers > 0 || st.x_held {
                    st = latch.cv.wait(st);
                }
            }
            st.promoting = false;
            st.u_held = false;
            st.x_held = true;
        }
        if let Some(o) = &latch.obs {
            o.acquired(EventKind::LatchPromote, &o.promotes, waited, latch.rank);
        }
        std::mem::forget(self); // state already transferred to the X guard
        XGuard { latch }
    }

    /// Demote to S mode (used when a would-be writer discovers no write is
    /// needed but wants to keep reading).
    pub fn demote(self) -> SGuard<'a, T> {
        let latch = self.latch;
        {
            let mut st = latch.state.lock();
            st.u_held = false;
            st.readers += 1;
        }
        std::mem::forget(self);
        latch.cv.notify_all();
        SGuard { latch }
    }
}

impl<T> Deref for UGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // Safety: U mode held — no X holder can exist.
        unsafe { &*self.latch.data.get() }
    }
}

impl<T> Drop for UGuard<'_, T> {
    fn drop(&mut self) {
        let mut st = self.latch.state.lock();
        st.u_held = false;
        drop(st);
        order::pop(self.latch.rank);
        if let Some(o) = &self.latch.obs {
            o.released(1, self.latch.rank);
        }
        self.latch.cv.notify_all();
    }
}

/// Exclusive-mode guard.
pub struct XGuard<'a, T> {
    latch: &'a Latch<T>,
}

impl<T> std::fmt::Debug for XGuard<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("XGuard")
            .field("rank", &self.latch.rank)
            .finish_non_exhaustive()
    }
}

impl<'a, T> XGuard<'a, T> {
    /// Demote to U mode (keeps readers out of write mode but lets S in).
    pub fn demote_to_u(self) -> UGuard<'a, T> {
        let latch = self.latch;
        {
            let mut st = latch.state.lock();
            st.x_held = false;
            st.u_held = true;
        }
        std::mem::forget(self);
        latch.cv.notify_all();
        UGuard { latch }
    }
}

impl<T> Deref for XGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // Safety: X mode held — exclusive.
        unsafe { &*self.latch.data.get() }
    }
}

impl<T> DerefMut for XGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // Safety: X mode held — exclusive.
        unsafe { &mut *self.latch.data.get() }
    }
}

impl<T> Drop for XGuard<'_, T> {
    fn drop(&mut self) {
        let mut st = self.latch.state.lock();
        st.x_held = false;
        drop(st);
        order::pop(self.latch.rank);
        if let Some(o) = &self.latch.obs {
            o.released(2, self.latch.rank);
        }
        self.latch.cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn s_is_shared() {
        let l = Latch::new(5);
        let a = l.s();
        let b = l.s();
        assert_eq!(*a + *b, 10);
    }

    #[test]
    fn s_blocks_x() {
        let l = Latch::new(());
        let _s = l.s();
        assert!(l.try_x().is_none());
        assert!(l.try_u().is_some(), "U is compatible with S");
    }

    #[test]
    fn u_excludes_u_and_x_but_not_s() {
        let l = Latch::new(());
        let _u = l.u();
        assert!(l.try_u().is_none());
        assert!(l.try_x().is_none());
        assert!(l.try_s().is_some());
    }

    #[test]
    fn x_excludes_everything() {
        let l = Latch::new(());
        let _x = l.x();
        assert!(l.try_s().is_none());
        assert!(l.try_u().is_none());
        assert!(l.try_x().is_none());
    }

    #[test]
    fn x_allows_mutation() {
        let l = Latch::new(0u32);
        {
            let mut g = l.x();
            *g = 42;
        }
        assert_eq!(*l.s(), 42);
    }

    #[test]
    fn promote_waits_for_readers() {
        let l = Latch::new(0u32);
        let reader_done = AtomicU32::new(0);
        std::thread::scope(|scope| {
            let u = l.u();
            let s = l.s();
            scope.spawn(|| {
                std::thread::sleep(Duration::from_millis(20));
                reader_done.store(1, Ordering::SeqCst);
                drop(s);
            });
            // Promotion must block until the reader drops.
            let mut x = u.promote();
            assert_eq!(reader_done.load(Ordering::SeqCst), 1);
            *x = 7;
        });
        assert_eq!(*l.s(), 7);
    }

    #[test]
    fn promote_blocks_new_readers() {
        // While a promotion is pending, new S requests must not starve it.
        let l = Latch::new(());
        let promoted = AtomicU32::new(0);
        std::thread::scope(|scope| {
            let u = l.u();
            let s = l.s();
            scope.spawn(|| {
                let _x = u.promote();
                promoted.store(1, Ordering::SeqCst);
            });
            // Give the promoter time to register.
            std::thread::sleep(Duration::from_millis(20));
            assert!(
                l.try_s().is_none(),
                "pending promotion must block new readers"
            );
            drop(s);
        });
        assert_eq!(promoted.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn demote_u_to_s() {
        let l = Latch::new(());
        let u = l.u();
        let _s = u.demote();
        assert!(l.try_u().is_some(), "after demote, U is available again");
    }

    #[test]
    fn demote_x_to_u_lets_readers_in() {
        let l = Latch::new(());
        let x = l.x();
        let _u = x.demote_to_u();
        assert!(l.try_s().is_some());
        assert!(l.try_x().is_none());
    }

    #[test]
    fn concurrent_counter_under_x() {
        let l = Arc::new(Latch::new(0u64));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let l = Arc::clone(&l);
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    let mut g = l.x();
                    *g += 1;
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*l.s(), 8000);
    }

    #[test]
    fn contention_counter_records_blocking() {
        contention::reset();
        let l = Latch::new(0u32);
        {
            let _s = l.s();
            assert!(l.try_x().is_none());
        }
        // Uncontended acquisitions do not count.
        let before = contention::waits();
        drop(l.s());
        drop(l.u());
        drop(l.x());
        assert_eq!(contention::waits(), before);
        // A blocked X does.
        std::thread::scope(|scope| {
            let g = l.s();
            scope.spawn(|| {
                let _x = l.x(); // must wait for the reader
            });
            std::thread::sleep(std::time::Duration::from_millis(20));
            drop(g);
        });
        assert!(contention::waits() > before);
    }

    #[test]
    fn writers_not_starved_by_readers() {
        let l = Arc::new(Latch::new(0u32));
        let stop = Arc::new(AtomicU32::new(0));
        let mut readers = Vec::new();
        for _ in 0..4 {
            let l = Arc::clone(&l);
            let stop = Arc::clone(&stop);
            readers.push(std::thread::spawn(move || {
                while stop.load(Ordering::SeqCst) == 0 {
                    let _g = l.s();
                    std::thread::yield_now();
                }
            }));
        }
        {
            let mut g = l.x(); // must succeed despite the reader storm
            *g = 1;
        }
        stop.store(1, Ordering::SeqCst);
        for r in readers {
            r.join().unwrap();
        }
        assert_eq!(*l.s(), 1);
    }
}
