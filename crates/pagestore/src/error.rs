//! Error types for the page store.

use crate::ids::PageId;
use std::fmt;

/// Errors surfaced by the page-store layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// The requested page id does not exist on the durable medium.
    PageNotFound(PageId),
    /// The buffer pool has no evictable frame (everything is pinned).
    PoolExhausted,
    /// A slotted-page operation was given an out-of-range slot index.
    BadSlot {
        /// The page (INVALID when unknown at this layer).
        page: PageId,
        /// The offending slot index.
        slot: u16,
    },
    /// A record does not fit in the page even after compaction.
    PageFull {
        /// The page (INVALID when unknown at this layer).
        page: PageId,
        /// Bytes the record requires (including its slot entry).
        need: usize,
        /// Bytes available.
        free: usize,
    },
    /// The space map has no free page left in its managed extent.
    OutOfSpace,
    /// A page's stored type differs from what the caller expected.
    WrongPageType {
        /// The page in question.
        page: PageId,
        /// The expected type name.
        expected: &'static str,
    },
    /// Corrupt on-disk or in-log bytes.
    Corrupt(String),
    /// A database-lock acquisition failed; `deadlock` distinguishes a
    /// waits-for cycle (victim should abort and retry) from a wait timeout.
    LockFailed {
        /// Whether the failure was a detected deadlock.
        deadlock: bool,
    },
    /// A simulated crash injected by a [`crate::fault::FaultInjector`] at a
    /// durable-write boundary. Only ever produced under the simulation kit.
    InjectedCrash {
        /// Human-readable description of the crash point.
        site: String,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::PageNotFound(p) => write!(f, "page {p} not found"),
            StoreError::PoolExhausted => write!(f, "buffer pool exhausted (all frames pinned)"),
            StoreError::BadSlot { page, slot } => write!(f, "bad slot {slot} on page {page}"),
            StoreError::PageFull { page, need, free } => {
                write!(f, "page {page} full: need {need} bytes, {free} free")
            }
            StoreError::OutOfSpace => write!(f, "space map exhausted"),
            StoreError::WrongPageType { page, expected } => {
                write!(f, "page {page} is not a {expected} page")
            }
            StoreError::Corrupt(msg) => write!(f, "corrupt data: {msg}"),
            StoreError::LockFailed { deadlock: true } => {
                write!(f, "deadlock detected; requester chosen as victim")
            }
            StoreError::LockFailed { deadlock: false } => write!(f, "lock wait timed out"),
            StoreError::InjectedCrash { site } => {
                write!(f, "simulated crash injected at {site}")
            }
        }
    }
}

impl std::error::Error for StoreError {}

/// Convenience alias used across the crate.
pub type StoreResult<T> = Result<T, StoreError>;
