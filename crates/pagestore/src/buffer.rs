//! Buffer pool: latched page frames with WAL-protocol enforcement.
//!
//! The pool owns a fixed set of frames, each holding a [`Page`] behind an
//! S/U/X [`Latch`]. Tree code pins a page with [`BufferPool::fetch`], then
//! latches it in the mode its protocol requires; the borrow rules make it
//! impossible to touch page bytes without an appropriate guard.
//!
//! The WAL protocol (§4.3.1) is enforced here: before a dirty page is written
//! to durable storage (eviction, checkpoint, shutdown), the registered
//! [`WalFlush`] hook is asked to force the log up to the page's LSN.
//!
//! # Sharding
//!
//! The page table and clock hand are sharded by `PageId` hash: each shard
//! owns a contiguous range of frames and its own mutex, so fetches of pages
//! in different shards never contend. Miss-path disk reads and eviction
//! write-backs run **outside** the shard lock: the victim frame is marked
//! `io_pending` and the affected table entries are flipped to a busy state,
//! so concurrent fetchers of the same page wait on the shard's condvar (on
//! the *frame's* I/O, not on the shard) while unrelated fetches in the same
//! shard proceed. Pools small enough for the existing eviction tests
//! (≤ 16 frames) get a single shard, preserving exact clock semantics.
//!
//! # Instant recovery
//!
//! During instant restart the recovery layer installs a [`RedoHook`] via
//! [`BufferPool::begin_recovery`]. While the hook is installed, every fetch
//! replays the page's pending redo records before the pin is handed out, and
//! a `PageNotFound` miss for a page the hook still owes records is formatted
//! fresh instead of failing (the page may exist only in the log). The hook is
//! uninstalled automatically once it reports itself complete.
//!
//! Checkpoint visibility invariant: a frame's `pid` and dirty flag are never
//! cleared *before* its write-back I/O completes (eviction and
//! [`BufferPool::flush_all`] both clear after the write). A fuzzy checkpoint
//! taken mid-write therefore still lists the page in its dirty-page table —
//! conservative, never lossy.

use crate::disk::DiskManager;
use crate::error::{StoreError, StoreResult};
use crate::ids::{Lsn, PageId};
use crate::latch::{order, Latch, SGuard, UGuard, XGuard};
use crate::page::{Page, PageType};
use crate::sync::{Condvar, Mutex, MutexGuard};
use pitree_obs::{Counter, EventKind, Hist, Recorder, Stopwatch};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// Hook through which the pool forces the log before writing a dirty page.
/// Implemented by the log manager in `pitree-wal`.
pub trait WalFlush: Send + Sync {
    /// Ensure all log records with LSN ≤ `lsn` are durable.
    fn flush_to(&self, lsn: Lsn) -> StoreResult<()>;
}

/// Hook through which the pool replays a page's pending redo records the
/// first time it is pinned during instant recovery. Implemented by the
/// instant-recovery plan in `pitree-wal`.
pub trait RedoHook: Send + Sync {
    /// Replay any pending redo records for `page`. Idempotent and a no-op
    /// when the page owes nothing. Called with the page pinned but
    /// unlatched; the hook takes its own X latch for the replay.
    fn redo(&self, page: &PinnedPage<'_>) -> StoreResult<()>;

    /// Whether `pid` still has pending redo records — i.e. the page may
    /// exist only in the log, not yet on disk, and a `PageNotFound` miss
    /// should format a fresh frame for the hook to fill.
    fn pending(&self, pid: PageId) -> bool;

    /// Whether every page's redo has completed (the pool uninstalls the
    /// hook once this reports `true`).
    fn is_complete(&self) -> bool;
}

struct Frame {
    latch: Latch<Page>,
    pid: Mutex<Option<PageId>>,
    pin: AtomicU32,
    dirty: AtomicBool,
    /// LSN of the first update that dirtied the page since it was last clean
    /// (the recovery LSN reported by fuzzy checkpoints).
    rec_lsn: AtomicU64,
    referenced: AtomicBool,
    /// The frame is mid-load or mid-write-back outside the shard lock; the
    /// clock must skip it and nobody may pin or latch it.
    io_pending: AtomicBool,
}

impl Frame {
    fn new(rec: &Recorder) -> Frame {
        Frame {
            latch: Latch::new_observed(Page::new(PageType::Free), order::UNRANKED, rec),
            pid: Mutex::new(None),
            pin: AtomicU32::new(0),
            dirty: AtomicBool::new(false),
            rec_lsn: AtomicU64::new(0),
            referenced: AtomicBool::new(false),
            io_pending: AtomicBool::new(false),
        }
    }
}

/// Where a table entry's page currently lives.
#[derive(Clone, Copy, PartialEq, Eq)]
enum SlotStatus {
    /// In the frame, pinnable.
    Resident,
    /// The frame is doing I/O for this entry (loading it, or writing the
    /// evicted predecessor back). Wait on the shard condvar and re-check.
    Busy,
}

#[derive(Clone, Copy)]
struct Slot {
    frame: usize,
    status: SlotStatus,
}

struct ShardState {
    table: HashMap<PageId, Slot>,
    clock: usize,
}

struct Shard {
    /// Frames `lo..hi` belong to this shard.
    lo: usize,
    hi: usize,
    state: Mutex<ShardState>,
    cv: Condvar,
    hits: Counter,
    misses: Counter,
}

/// Per-shard counter names (`Counter` requires `&'static str`); 16 is the
/// shard-count cap in [`BufferPool::with_recorder`].
const SHARD_HITS: [&str; 16] = [
    "buf.shard00.hits",
    "buf.shard01.hits",
    "buf.shard02.hits",
    "buf.shard03.hits",
    "buf.shard04.hits",
    "buf.shard05.hits",
    "buf.shard06.hits",
    "buf.shard07.hits",
    "buf.shard08.hits",
    "buf.shard09.hits",
    "buf.shard10.hits",
    "buf.shard11.hits",
    "buf.shard12.hits",
    "buf.shard13.hits",
    "buf.shard14.hits",
    "buf.shard15.hits",
];
const SHARD_MISSES: [&str; 16] = [
    "buf.shard00.misses",
    "buf.shard01.misses",
    "buf.shard02.misses",
    "buf.shard03.misses",
    "buf.shard04.misses",
    "buf.shard05.misses",
    "buf.shard06.misses",
    "buf.shard07.misses",
    "buf.shard08.misses",
    "buf.shard09.misses",
    "buf.shard10.misses",
    "buf.shard11.misses",
    "buf.shard12.misses",
    "buf.shard13.misses",
    "buf.shard14.misses",
    "buf.shard15.misses",
];

/// Counters exposed for the buffer-behaviour experiments. These are thin
/// handles onto the pool's [`Recorder`] registry (`buf.*` names), so the
/// same numbers appear in [`pitree_obs::Registry::report`].
#[derive(Debug, Clone)]
pub struct PoolStats {
    /// Fetches served from the pool (`buf.hits`).
    pub hits: Counter,
    /// Fetches that had to read from disk (`buf.misses`).
    pub misses: Counter,
    /// Dirty pages written back during eviction (`buf.dirty_evictions`).
    pub dirty_evictions: Counter,
}

impl PoolStats {
    fn new(rec: &Recorder) -> PoolStats {
        PoolStats {
            hits: rec.counter("buf.hits"),
            misses: rec.counter("buf.misses"),
            dirty_evictions: rec.counter("buf.dirty_evictions"),
        }
    }
}

/// The buffer pool. Cheap to share via `Arc`.
pub struct BufferPool {
    frames: Box<[Frame]>,
    shards: Box<[Shard]>,
    disk: Arc<dyn DiskManager>,
    wal: OnceLock<Arc<dyn WalFlush>>,
    /// Instant-recovery redo hook; present only between
    /// [`BufferPool::begin_recovery`] and [`BufferPool::end_recovery`].
    redo: Mutex<Option<Arc<dyn RedoHook>>>,
    /// Fast-path flag mirroring `redo.is_some()` so fetches outside
    /// recovery pay one relaxed-ish atomic load, not a mutex.
    recovering: AtomicBool,
    rec: Recorder,
    stats: PoolStats,
    flushes: Counter,
    shard_conflicts: Counter,
    evictions: Counter,
    writebacks: Counter,
    read_ns: Hist,
    writeback_ns: Hist,
}

impl std::fmt::Debug for BufferPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BufferPool")
            .field("capacity", &self.frames.len())
            .field("shards", &self.shards.len())
            .finish_non_exhaustive()
    }
}

impl BufferPool {
    /// Create a pool of `capacity` frames over `disk`, recording into a
    /// fresh private registry (see [`BufferPool::with_recorder`]).
    pub fn new(disk: Arc<dyn DiskManager>, capacity: usize) -> BufferPool {
        BufferPool::with_recorder(disk, capacity, Recorder::detached())
    }

    /// Create a pool of `capacity` frames over `disk`, recording `buf.*`
    /// metrics and buffer/latch events into `rec`'s registry. The store
    /// assembly passes one registry through pool, log, lock table, and
    /// tree so a whole workload reports in one place.
    ///
    /// The shard count defaults to `capacity / 16` clamped to `1..=16`, so
    /// every shard keeps at least 16 frames of clock headroom and tiny test
    /// pools behave exactly like the unsharded design.
    pub fn with_recorder(disk: Arc<dyn DiskManager>, capacity: usize, rec: Recorder) -> BufferPool {
        let shards = (capacity / 16).clamp(1, 16);
        BufferPool::with_shards(disk, capacity, shards, rec)
    }

    /// [`BufferPool::with_recorder`] with an explicit shard count
    /// (`1 ..= 16`, and at most one shard per frame).
    pub fn with_shards(
        disk: Arc<dyn DiskManager>,
        capacity: usize,
        shards: usize,
        rec: Recorder,
    ) -> BufferPool {
        assert!(capacity > 0);
        assert!(
            (1..=SHARD_HITS.len()).contains(&shards) && shards <= capacity,
            "shard count must be 1..=16 and <= capacity"
        );
        let shards: Box<[Shard]> = (0..shards)
            .map(|i| {
                let lo = i * capacity / shards;
                let hi = (i + 1) * capacity / shards;
                Shard {
                    lo,
                    hi,
                    state: Mutex::new(ShardState {
                        table: HashMap::new(),
                        clock: lo,
                    }),
                    cv: Condvar::new(),
                    hits: rec.counter(SHARD_HITS[i]),
                    misses: rec.counter(SHARD_MISSES[i]),
                }
            })
            .collect();
        BufferPool {
            frames: (0..capacity).map(|_| Frame::new(&rec)).collect(),
            shards,
            disk,
            wal: OnceLock::new(),
            redo: Mutex::new(None),
            recovering: AtomicBool::new(false),
            stats: PoolStats::new(&rec),
            flushes: rec.counter("buf.flushes"),
            shard_conflicts: rec.counter("buf.shard_conflicts"),
            evictions: rec.counter("buf.evictions"),
            writebacks: rec.counter("buf.writebacks"),
            read_ns: rec.hist("buf.read_ns"),
            writeback_ns: rec.hist("buf.writeback_ns"),
            rec,
        }
    }

    /// The recorder this pool (and its frame latches) report into.
    pub fn recorder(&self) -> &Recorder {
        &self.rec
    }

    /// Number of page-table shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Register the log-force hook. Must be called once, before any dirty
    /// page can be evicted; until then eviction of dirty pages fails.
    pub fn set_wal_hook(&self, wal: Arc<dyn WalFlush>) {
        let _ = self.wal.set(wal);
    }

    /// The underlying durable storage.
    pub fn disk(&self) -> &Arc<dyn DiskManager> {
        &self.disk
    }

    /// Buffer-behaviour counters.
    pub fn stats(&self) -> &PoolStats {
        &self.stats
    }

    /// The shard owning `pid` (Fibonacci hashing — deterministic, no
    /// `RandomState`, so same-seed runs shard identically).
    fn shard_of(&self, pid: PageId) -> usize {
        page_shard(pid, self.shards.len())
    }

    /// Install an instant-recovery redo hook: until [`BufferPool::end_recovery`]
    /// (or until the hook reports [`RedoHook::is_complete`]), every fetch
    /// replays the page's pending redo records before the pin is returned.
    pub fn begin_recovery(&self, hook: Arc<dyn RedoHook>) {
        *self.redo.lock() = Some(hook);
        self.recovering.store(true, Ordering::SeqCst);
    }

    /// Uninstall the redo hook; fetches go back to the plain path.
    pub fn end_recovery(&self) {
        self.recovering.store(false, Ordering::SeqCst);
        *self.redo.lock() = None;
    }

    /// Whether an instant-recovery redo hook is currently installed.
    pub fn is_recovering(&self) -> bool {
        self.recovering.load(Ordering::SeqCst)
    }

    fn redo_hook(&self) -> Option<Arc<dyn RedoHook>> {
        if !self.recovering.load(Ordering::SeqCst) {
            return None;
        }
        self.redo.lock().clone()
    }

    /// Replay `page`'s pending redo records through the installed hook, if
    /// any; uninstalls the hook once it reports complete.
    fn run_redo(&self, page: &PinnedPage<'_>) -> StoreResult<()> {
        if let Some(hook) = self.redo_hook() {
            hook.redo(page)?;
            if hook.is_complete() {
                self.end_recovery();
            }
        }
        Ok(())
    }

    /// Lock a shard, counting contended acquisitions (`buf.shard_conflicts`).
    fn lock_shard<'a>(&self, shard: &'a Shard) -> MutexGuard<'a, ShardState> {
        match shard.state.try_lock() {
            Some(g) => g,
            None => {
                self.shard_conflicts.inc();
                shard.state.lock()
            }
        }
    }

    /// Pin the page `pid`, reading it from disk on a miss.
    pub fn fetch(&self, pid: PageId) -> StoreResult<PinnedPage<'_>> {
        self.fetch_inner(pid, None)
    }

    /// Pin page `pid`, formatting a fresh empty page of type `ty` if it is
    /// neither cached nor on disk. Used when allocating new pages and during
    /// recovery redo of `Format` records against never-flushed pages.
    pub fn fetch_or_create(&self, pid: PageId, ty: PageType) -> StoreResult<PinnedPage<'_>> {
        self.fetch_inner(pid, Some(ty))
    }

    fn fetch_inner(&self, pid: PageId, create: Option<PageType>) -> StoreResult<PinnedPage<'_>> {
        let shard = &self.shards[self.shard_of(pid)];
        let mut st = self.lock_shard(shard);
        loop {
            match st.table.get(&pid) {
                Some(slot) if slot.status == SlotStatus::Resident => {
                    let idx = slot.frame;
                    let frame = &self.frames[idx];
                    frame.pin.fetch_add(1, Ordering::SeqCst);
                    frame.referenced.store(true, Ordering::Relaxed);
                    drop(st);
                    self.stats.hits.inc();
                    shard.hits.inc();
                    self.rec.event(EventKind::BufHit, pid.0, 0);
                    let pinned = PinnedPage {
                        pool: self,
                        frame: idx,
                        pid,
                    };
                    if self.recovering.load(Ordering::SeqCst) {
                        self.run_redo(&pinned)?;
                    }
                    return Ok(pinned);
                }
                Some(_) => {
                    // Another thread is doing I/O for this page; wait on the
                    // frame's completion, then re-check the table.
                    st = shard.cv.wait(st);
                }
                None => break,
            }
        }
        // Miss: pick a victim inside this shard, flip the affected table
        // entries to Busy, and do all I/O with the shard lock released.
        self.stats.misses.inc();
        shard.misses.inc();
        self.rec.event(EventKind::BufMiss, pid.0, 0);
        let victim = loop {
            match self.pick_victim(shard, &mut st) {
                VictimScan::Found(idx) => break idx,
                VictimScan::AllBusy => st = shard.cv.wait(st), // transient: I/O in flight
                VictimScan::Exhausted => return Err(StoreError::PoolExhausted),
            }
        };
        let frame = &self.frames[victim];
        frame.io_pending.store(true, Ordering::SeqCst);
        // Peek at the victim's identity — do NOT clear it yet. The pid and
        // dirty flag must stay set until the write-back I/O completes so a
        // fuzzy checkpoint taken mid-eviction still sees the page in
        // `dirty_pages()`; clearing first would open a window where a dirty
        // page is invisible to the checkpoint's dirty-page table and its
        // records sit below the recovered redo horizon.
        let old_pid = *frame.pid.lock();
        let old_dirty = old_pid.is_some() && frame.dirty.load(Ordering::SeqCst);
        if old_pid.is_some() {
            // A resident page is being displaced (clean or dirty): this is
            // the eviction the scenario harness steers by (`buf.evictions`).
            self.evictions.inc();
        }
        if let Some(old) = old_pid {
            if old_dirty {
                st.table.insert(
                    old,
                    Slot {
                        frame: victim,
                        status: SlotStatus::Busy,
                    },
                );
            } else {
                st.table.remove(&old);
                *frame.pid.lock() = None;
            }
        }
        st.table.insert(
            pid,
            Slot {
                frame: victim,
                status: SlotStatus::Busy,
            },
        );
        drop(st);

        // -- Write back a dirty victim (WAL force + page write), no lock --
        if let Some(old) = old_pid {
            if old_dirty {
                let res = {
                    let g = frame.latch.s();
                    self.write_back(old, &g)
                };
                match res {
                    Ok(()) => {
                        // Only now — image durably written — may the frame
                        // forget the old page and drop its dirty flag.
                        *frame.pid.lock() = None;
                        frame.dirty.store(false, Ordering::SeqCst);
                        self.stats.dirty_evictions.inc();
                        self.rec.event(EventKind::BufEvictDirty, old.0, 0);
                        let mut st = self.lock_shard(shard);
                        st.table.remove(&old);
                        drop(st);
                        shard.cv.notify_all();
                    }
                    Err(e) => {
                        // The frame still carries the page (pid and dirty
                        // were never cleared); just restore the table entry.
                        frame.io_pending.store(false, Ordering::SeqCst);
                        let mut st = self.lock_shard(shard);
                        st.table.remove(&pid);
                        st.table.insert(
                            old,
                            Slot {
                                frame: victim,
                                status: SlotStatus::Resident,
                            },
                        );
                        drop(st);
                        shard.cv.notify_all();
                        return Err(e);
                    }
                }
            }
        }

        // -- Load/format the incoming page, still outside the shard lock --
        let timer = Stopwatch::start();
        let page = match self.disk.read_page(pid) {
            Ok(p) => p,
            // A page the redo hook still owes records may exist only in the
            // log: hand the hook a fresh frame to replay into.
            Err(StoreError::PageNotFound(_))
                if create.is_some() || self.redo_hook().is_some_and(|h| h.pending(pid)) =>
            {
                Page::new(create.unwrap_or(PageType::Free))
            }
            Err(e) => {
                // The frame stays free (any dirty victim is already safely
                // on disk); just retract the Busy entry.
                frame.io_pending.store(false, Ordering::SeqCst);
                let mut st = self.lock_shard(shard);
                st.table.remove(&pid);
                drop(st);
                shard.cv.notify_all();
                return Err(e);
            }
        };
        self.read_ns.record(timer.elapsed_ns());
        {
            // Unpinned + io_pending keeps other pool users away from the
            // frame; only a concurrent flush_all may briefly hold S, so a
            // blocking X is safe (we hold no locks).
            let mut g = frame.latch.x();
            *g = page;
        }
        *frame.pid.lock() = Some(pid);
        frame.pin.store(1, Ordering::SeqCst);
        frame.referenced.store(true, Ordering::Relaxed);
        frame.io_pending.store(false, Ordering::SeqCst);
        let mut st = self.lock_shard(shard);
        st.table.insert(
            pid,
            Slot {
                frame: victim,
                status: SlotStatus::Resident,
            },
        );
        drop(st);
        shard.cv.notify_all();
        let pinned = PinnedPage {
            pool: self,
            frame: victim,
            pid,
        };
        if self.recovering.load(Ordering::SeqCst) {
            self.run_redo(&pinned)?;
        }
        Ok(pinned)
    }

    /// Clock sweep over the shard's frame range. Two sweeps: the first
    /// clears reference bits, the second takes any unpinned frame; `2n+1`
    /// steps bound the scan.
    fn pick_victim(&self, shard: &Shard, st: &mut ShardState) -> VictimScan {
        let n = shard.hi - shard.lo;
        let mut saw_busy = false;
        for _ in 0..(2 * n + 1) {
            let idx = st.clock;
            st.clock = shard.lo + (st.clock + 1 - shard.lo) % n;
            let frame = &self.frames[idx];
            if frame.io_pending.load(Ordering::SeqCst) {
                saw_busy = true;
                continue;
            }
            if frame.pin.load(Ordering::SeqCst) != 0 {
                continue;
            }
            if frame.referenced.swap(false, Ordering::Relaxed) {
                continue;
            }
            return VictimScan::Found(idx);
        }
        if saw_busy {
            VictimScan::AllBusy
        } else {
            VictimScan::Exhausted
        }
    }

    /// WAL-protocol write of one page image.
    fn write_back(&self, pid: PageId, page: &Page) -> StoreResult<()> {
        let timer = Stopwatch::start();
        if let Some(wal) = self.wal.get() {
            wal.flush_to(page.lsn())?;
        } else if page.lsn() != Lsn::ZERO {
            return Err(StoreError::Corrupt(format!(
                "dirty page {pid} with LSN {} but no WAL hook registered",
                page.lsn()
            )));
        }
        let res = self.disk.write_page(pid, page);
        self.writeback_ns.record(timer.elapsed_ns());
        if res.is_ok() {
            self.writebacks.inc();
        }
        res
    }

    /// Write every dirty page back to disk (checkpoint / clean shutdown).
    pub fn flush_all(&self) -> StoreResult<()> {
        for frame in self.frames.iter() {
            let pid = match *frame.pid.lock() {
                Some(p) => p,
                None => continue,
            };
            if !frame.dirty.load(Ordering::SeqCst) {
                continue;
            }
            let g = frame.latch.s();
            // Re-check identity under the latch: the frame may have been
            // re-used between the peek and the S acquisition.
            if *frame.pid.lock() == Some(pid) {
                self.write_back(pid, &g)?;
                // Clear only after the write succeeds: a concurrent fuzzy
                // checkpoint must keep seeing the page as dirty until its
                // image is truly on disk, and a failed write must leave the
                // flag set. No updater can race the clear — marking dirty
                // happens under the X latch, excluded by our S guard.
                frame.dirty.store(false, Ordering::SeqCst);
                self.flushes.inc();
                self.rec.event(EventKind::BufFlush, pid.0, 0);
            }
        }
        Ok(())
    }

    /// `(page id, recovery LSN)` of all currently dirty cached pages (the
    /// dirty-page table of a fuzzy checkpoint).
    pub fn dirty_pages(&self) -> Vec<(PageId, Lsn)> {
        let mut out = Vec::new();
        for frame in self.frames.iter() {
            if frame.dirty.load(Ordering::SeqCst) {
                if let Some(pid) = *frame.pid.lock() {
                    out.push((pid, Lsn(frame.rec_lsn.load(Ordering::SeqCst))));
                }
            }
        }
        out
    }
}

/// The shard index of `pid` in a partition of `shards` shards, using the
/// same Fibonacci hash as the pool's page table. Public so parallel-redo
/// partitioning replays each pool shard's pages on a single worker,
/// mirroring run-time placement.
pub fn page_shard(pid: PageId, shards: usize) -> usize {
    let h = pid.0.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    ((h >> 48) as usize) % shards.max(1)
}

/// Outcome of one clock sweep.
enum VictimScan {
    Found(usize),
    /// Every candidate was mid-I/O; wait for a completion and retry.
    AllBusy,
    /// Every frame is pinned: genuinely out of frames.
    Exhausted,
}

/// A pinned page: holds a pin (blocking eviction) and grants access to the
/// frame latch. Latching discipline is up to the caller, per §4.1.
pub struct PinnedPage<'a> {
    pool: &'a BufferPool,
    frame: usize,
    pid: PageId,
}

impl std::fmt::Debug for PinnedPage<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PinnedPage")
            .field("pid", &self.pid)
            .field("frame", &self.frame)
            .finish_non_exhaustive()
    }
}

impl<'a> PinnedPage<'a> {
    /// The pinned page's id.
    pub fn id(&self) -> PageId {
        self.pid
    }

    fn f(&self) -> &'a Frame {
        &self.pool.frames[self.frame]
    }

    /// Latch in S mode.
    pub fn s(&self) -> SGuard<'a, Page> {
        self.f().latch.s()
    }

    /// Latch in U mode ("whenever a node might be written, a U latch is
    /// used", §4.1.1).
    pub fn u(&self) -> UGuard<'a, Page> {
        self.f().latch.u()
    }

    /// Latch in X mode.
    pub fn x(&self) -> XGuard<'a, Page> {
        self.f().latch.x()
    }

    /// Non-blocking latch attempts, used where the latch-ordering protocol
    /// requires conditional acquisition (e.g. climbing *up* a saved path,
    /// §5.2.2(b)).
    pub fn try_s(&self) -> Option<SGuard<'a, Page>> {
        self.f().latch.try_s()
    }

    /// Non-blocking U-latch attempt.
    pub fn try_u(&self) -> Option<UGuard<'a, Page>> {
        self.f().latch.try_u()
    }

    /// Non-blocking X-latch attempt.
    pub fn try_x(&self) -> Option<XGuard<'a, Page>> {
        self.f().latch.try_x()
    }

    /// Mark the page dirty. Called by the logging layer after every applied
    /// page operation; `lsn` is the log record's LSN and becomes the frame's
    /// recovery LSN if the page was clean.
    pub fn mark_dirty(&self) {
        self.mark_dirty_at(Lsn::ZERO);
    }

    /// [`PinnedPage::mark_dirty`] with an explicit recovery LSN.
    pub fn mark_dirty_at(&self, lsn: Lsn) {
        let f = self.f();
        if !f.dirty.swap(true, Ordering::SeqCst) {
            f.rec_lsn.store(lsn.0, Ordering::SeqCst);
        }
    }
}

impl Clone for PinnedPage<'_> {
    fn clone(&self) -> Self {
        self.f().pin.fetch_add(1, Ordering::SeqCst);
        PinnedPage {
            pool: self.pool,
            frame: self.frame,
            pid: self.pid,
        }
    }
}

impl Drop for PinnedPage<'_> {
    fn drop(&mut self) {
        self.f().pin.fetch_sub(1, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::MemDisk;

    fn pool(frames: usize) -> (Arc<MemDisk>, BufferPool) {
        let disk = Arc::new(MemDisk::new());
        let pool = BufferPool::new(Arc::clone(&disk) as Arc<dyn DiskManager>, frames);
        (disk, pool)
    }

    struct NoopWal;
    impl WalFlush for NoopWal {
        fn flush_to(&self, _lsn: Lsn) -> StoreResult<()> {
            Ok(())
        }
    }

    #[test]
    fn create_and_reread() {
        let (_disk, pool) = pool(4);
        {
            let p = pool.fetch_or_create(PageId(1), PageType::Node).unwrap();
            let mut g = p.x();
            g.insert(0, b"cached").unwrap();
            p.mark_dirty();
        }
        let p = pool.fetch(PageId(1)).unwrap();
        assert_eq!(p.s().get(0).unwrap(), b"cached");
        assert_eq!(pool.stats().hits.get(), 1);
    }

    #[test]
    fn miss_on_absent_page() {
        let (_disk, pool) = pool(4);
        assert!(matches!(
            pool.fetch(PageId(9)),
            Err(StoreError::PageNotFound(_))
        ));
    }

    #[test]
    fn eviction_writes_dirty_pages_back() {
        let (disk, pool) = pool(2);
        pool.set_wal_hook(Arc::new(NoopWal));
        for i in 1..=4u64 {
            let p = pool.fetch_or_create(PageId(i), PageType::Node).unwrap();
            let mut g = p.x();
            g.insert(0, format!("page-{i}").as_bytes()).unwrap();
            p.mark_dirty();
        }
        // Pages 1 and 2 must have been evicted and written to "disk".
        let q = disk.read_page(PageId(1)).unwrap();
        assert_eq!(q.get(0).unwrap(), b"page-1");
        // And they can be fetched back.
        let p = pool.fetch(PageId(1)).unwrap();
        assert_eq!(p.s().get(0).unwrap(), b"page-1");
    }

    #[test]
    fn pinned_pages_are_not_evicted() {
        let (_disk, pool) = pool(2);
        pool.set_wal_hook(Arc::new(NoopWal));
        let a = pool.fetch_or_create(PageId(1), PageType::Node).unwrap();
        let b = pool.fetch_or_create(PageId(2), PageType::Node).unwrap();
        // No free frame: fetching a third page must fail, not evict a pin.
        assert!(matches!(
            pool.fetch_or_create(PageId(3), PageType::Node),
            Err(StoreError::PoolExhausted)
        ));
        drop(a);
        assert!(pool.fetch_or_create(PageId(3), PageType::Node).is_ok());
        drop(b);
    }

    #[test]
    fn flush_all_persists_dirty_pages() {
        let (disk, pool) = pool(8);
        pool.set_wal_hook(Arc::new(NoopWal));
        for i in 1..=3u64 {
            let p = pool.fetch_or_create(PageId(i), PageType::Node).unwrap();
            let mut g = p.x();
            g.insert(0, &[i as u8]).unwrap();
            p.mark_dirty();
        }
        assert_eq!(pool.dirty_pages().len(), 3);
        pool.flush_all().unwrap();
        assert!(pool.dirty_pages().is_empty());
        for i in 1..=3u64 {
            assert_eq!(
                disk.read_page(PageId(i)).unwrap().get(0).unwrap(),
                &[i as u8]
            );
        }
    }

    #[test]
    fn clone_pin_keeps_page_resident() {
        let (_disk, pool) = pool(2);
        pool.set_wal_hook(Arc::new(NoopWal));
        let a = pool.fetch_or_create(PageId(1), PageType::Node).unwrap();
        let a2 = a.clone();
        drop(a);
        let _b = pool.fetch_or_create(PageId(2), PageType::Node).unwrap();
        // One frame is still pinned by a2, so a third page cannot come in.
        assert!(matches!(
            pool.fetch_or_create(PageId(3), PageType::Node),
            Err(StoreError::PoolExhausted)
        ));
        drop(a2);
    }

    #[test]
    fn wal_hook_forced_before_dirty_write() {
        struct RecordingWal(AtomicU64);
        impl WalFlush for RecordingWal {
            fn flush_to(&self, lsn: Lsn) -> StoreResult<()> {
                self.0.fetch_max(lsn.0, Ordering::SeqCst);
                Ok(())
            }
        }
        let (_disk, pool) = pool(1);
        let wal = Arc::new(RecordingWal(AtomicU64::new(0)));
        pool.set_wal_hook(Arc::clone(&wal) as Arc<dyn WalFlush>);
        {
            let p = pool.fetch_or_create(PageId(1), PageType::Node).unwrap();
            let mut g = p.x();
            g.insert(0, b"x").unwrap();
            g.set_lsn(Lsn(77));
            p.mark_dirty();
        }
        // Force eviction by fetching another page into the single frame.
        let _p2 = pool.fetch_or_create(PageId(2), PageType::Node).unwrap();
        assert_eq!(
            wal.0.load(Ordering::SeqCst),
            77,
            "log must be forced to the page LSN"
        );
    }

    #[test]
    fn sharded_pool_keeps_pages_in_their_shard() {
        let disk = Arc::new(MemDisk::new());
        let pool = BufferPool::with_shards(
            Arc::clone(&disk) as Arc<dyn DiskManager>,
            64,
            4,
            Recorder::detached(),
        );
        pool.set_wal_hook(Arc::new(NoopWal));
        assert_eq!(pool.shard_count(), 4);
        for i in 1..=32u64 {
            let p = pool.fetch_or_create(PageId(i), PageType::Node).unwrap();
            let mut g = p.x();
            g.insert(0, &i.to_be_bytes()).unwrap();
            p.mark_dirty();
            drop(g);
            drop(p);
            let shard = pool.shard_of(PageId(i));
            let st = pool.shards[shard].state.lock();
            let slot = st.table.get(&PageId(i)).expect("resident after fetch");
            assert!(
                (pool.shards[shard].lo..pool.shards[shard].hi).contains(&slot.frame),
                "page {i} in a frame outside its shard range"
            );
        }
        // Everything reads back (possibly after eviction round-trips).
        for i in 1..=32u64 {
            let p = pool.fetch(PageId(i)).unwrap();
            assert_eq!(p.s().get(0).unwrap(), &i.to_be_bytes());
        }
    }

    #[test]
    fn default_shard_counts_scale_with_capacity() {
        let (_d1, small) = pool(8);
        assert_eq!(small.shard_count(), 1);
        let (_d2, medium) = pool(64);
        assert_eq!(medium.shard_count(), 4);
        let (_d3, large) = pool(1024);
        assert_eq!(large.shard_count(), 16);
    }

    #[test]
    fn pool_exhausted_is_per_shard_when_all_pins_land_in_one_shard() {
        // With one shard (tiny pool) semantics are global, matching the
        // old design; this guards the single-shard fallback explicitly.
        let (_disk, pool) = pool(2);
        assert_eq!(pool.shard_count(), 1);
    }
}
