//! Buffer pool: latched page frames with WAL-protocol enforcement.
//!
//! The pool owns a fixed set of frames, each holding a [`Page`] behind an
//! S/U/X [`Latch`]. Tree code pins a page with [`BufferPool::fetch`], then
//! latches it in the mode its protocol requires; the borrow rules make it
//! impossible to touch page bytes without an appropriate guard.
//!
//! The WAL protocol (§4.3.1) is enforced here: before a dirty page is written
//! to durable storage (eviction, checkpoint, shutdown), the registered
//! [`WalFlush`] hook is asked to force the log up to the page's LSN.

use crate::disk::DiskManager;
use crate::error::{StoreError, StoreResult};
use crate::ids::{Lsn, PageId};
use crate::latch::{order, Latch, SGuard, UGuard, XGuard};
use crate::page::{Page, PageType};
use crate::sync::Mutex;
use pitree_obs::{Counter, EventKind, Hist, Recorder, Stopwatch};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// Hook through which the pool forces the log before writing a dirty page.
/// Implemented by the log manager in `pitree-wal`.
pub trait WalFlush: Send + Sync {
    /// Ensure all log records with LSN ≤ `lsn` are durable.
    fn flush_to(&self, lsn: Lsn) -> StoreResult<()>;
}

struct Frame {
    latch: Latch<Page>,
    pid: Mutex<Option<PageId>>,
    pin: AtomicU32,
    dirty: AtomicBool,
    /// LSN of the first update that dirtied the page since it was last clean
    /// (the recovery LSN reported by fuzzy checkpoints).
    rec_lsn: AtomicU64,
    referenced: AtomicBool,
}

impl Frame {
    fn new(rec: &Recorder) -> Frame {
        Frame {
            latch: Latch::new_observed(Page::new(PageType::Free), order::UNRANKED, rec),
            pid: Mutex::new(None),
            pin: AtomicU32::new(0),
            dirty: AtomicBool::new(false),
            rec_lsn: AtomicU64::new(0),
            referenced: AtomicBool::new(false),
        }
    }
}

struct PoolInner {
    table: HashMap<PageId, usize>,
    clock: usize,
}

/// Counters exposed for the buffer-behaviour experiments. These are thin
/// handles onto the pool's [`Recorder`] registry (`buf.*` names), so the
/// same numbers appear in [`pitree_obs::Registry::report`].
#[derive(Debug, Clone)]
pub struct PoolStats {
    /// Fetches served from the pool (`buf.hits`).
    pub hits: Counter,
    /// Fetches that had to read from disk (`buf.misses`).
    pub misses: Counter,
    /// Dirty pages written back during eviction (`buf.dirty_evictions`).
    pub dirty_evictions: Counter,
}

impl PoolStats {
    fn new(rec: &Recorder) -> PoolStats {
        PoolStats {
            hits: rec.counter("buf.hits"),
            misses: rec.counter("buf.misses"),
            dirty_evictions: rec.counter("buf.dirty_evictions"),
        }
    }
}

/// The buffer pool. Cheap to share via `Arc`.
pub struct BufferPool {
    frames: Box<[Frame]>,
    inner: Mutex<PoolInner>,
    disk: Arc<dyn DiskManager>,
    wal: OnceLock<Arc<dyn WalFlush>>,
    rec: Recorder,
    stats: PoolStats,
    flushes: Counter,
    read_ns: Hist,
    writeback_ns: Hist,
}

impl std::fmt::Debug for BufferPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BufferPool")
            .field("capacity", &self.frames.len())
            .finish_non_exhaustive()
    }
}

impl BufferPool {
    /// Create a pool of `capacity` frames over `disk`, recording into a
    /// fresh private registry (see [`BufferPool::with_recorder`]).
    pub fn new(disk: Arc<dyn DiskManager>, capacity: usize) -> BufferPool {
        BufferPool::with_recorder(disk, capacity, Recorder::detached())
    }

    /// Create a pool of `capacity` frames over `disk`, recording `buf.*`
    /// metrics and buffer/latch events into `rec`'s registry. The store
    /// assembly passes one registry through pool, log, lock table, and
    /// tree so a whole workload reports in one place.
    pub fn with_recorder(disk: Arc<dyn DiskManager>, capacity: usize, rec: Recorder) -> BufferPool {
        assert!(capacity > 0);
        BufferPool {
            frames: (0..capacity).map(|_| Frame::new(&rec)).collect(),
            inner: Mutex::new(PoolInner {
                table: HashMap::new(),
                clock: 0,
            }),
            disk,
            wal: OnceLock::new(),
            stats: PoolStats::new(&rec),
            flushes: rec.counter("buf.flushes"),
            read_ns: rec.hist("buf.read_ns"),
            writeback_ns: rec.hist("buf.writeback_ns"),
            rec,
        }
    }

    /// The recorder this pool (and its frame latches) report into.
    pub fn recorder(&self) -> &Recorder {
        &self.rec
    }

    /// Register the log-force hook. Must be called once, before any dirty
    /// page can be evicted; until then eviction of dirty pages fails.
    pub fn set_wal_hook(&self, wal: Arc<dyn WalFlush>) {
        let _ = self.wal.set(wal);
    }

    /// The underlying durable storage.
    pub fn disk(&self) -> &Arc<dyn DiskManager> {
        &self.disk
    }

    /// Buffer-behaviour counters.
    pub fn stats(&self) -> &PoolStats {
        &self.stats
    }

    /// Pin the page `pid`, reading it from disk on a miss.
    pub fn fetch(&self, pid: PageId) -> StoreResult<PinnedPage<'_>> {
        self.fetch_inner(pid, None)
    }

    /// Pin page `pid`, formatting a fresh empty page of type `ty` if it is
    /// neither cached nor on disk. Used when allocating new pages and during
    /// recovery redo of `Format` records against never-flushed pages.
    pub fn fetch_or_create(&self, pid: PageId, ty: PageType) -> StoreResult<PinnedPage<'_>> {
        self.fetch_inner(pid, Some(ty))
    }

    fn fetch_inner(&self, pid: PageId, create: Option<PageType>) -> StoreResult<PinnedPage<'_>> {
        let mut inner = self.inner.lock();
        if let Some(&idx) = inner.table.get(&pid) {
            let frame = &self.frames[idx];
            frame.pin.fetch_add(1, Ordering::SeqCst);
            frame.referenced.store(true, Ordering::Relaxed);
            self.stats.hits.inc();
            self.rec.event(EventKind::BufHit, pid.0, 0);
            return Ok(PinnedPage {
                pool: self,
                frame: idx,
                pid,
            });
        }
        self.stats.misses.inc();
        self.rec.event(EventKind::BufMiss, pid.0, 0);
        // Load/format the page first so a failed read leaves the pool intact.
        let timer = Stopwatch::start();
        let page = match self.disk.read_page(pid) {
            Ok(p) => p,
            Err(StoreError::PageNotFound(_)) if create.is_some() => Page::new(create.unwrap()),
            Err(e) => return Err(e),
        };
        self.read_ns.record(timer.elapsed_ns());
        let idx = self.evict_victim(&mut inner)?;
        let frame = &self.frames[idx];
        {
            let mut g = frame
                .latch
                .try_x()
                .expect("evicted frame must be unpinned and unlatched");
            *g = page;
        }
        *frame.pid.lock() = Some(pid);
        frame.pin.store(1, Ordering::SeqCst);
        frame.dirty.store(false, Ordering::SeqCst);
        frame.referenced.store(true, Ordering::Relaxed);
        inner.table.insert(pid, idx);
        Ok(PinnedPage {
            pool: self,
            frame: idx,
            pid,
        })
    }

    /// Pick a free or evictable frame; writes back a dirty victim.
    fn evict_victim(&self, inner: &mut PoolInner) -> StoreResult<usize> {
        let n = self.frames.len();
        // Two sweeps: the first clears reference bits, the second takes any
        // unpinned frame. 2n+1 steps bound the scan.
        for _ in 0..(2 * n + 1) {
            let idx = inner.clock;
            inner.clock = (inner.clock + 1) % n;
            let frame = &self.frames[idx];
            if frame.pin.load(Ordering::SeqCst) != 0 {
                continue;
            }
            if frame.referenced.swap(false, Ordering::Relaxed) {
                continue;
            }
            // Unpinned and unreferenced: evict.
            let old_pid = frame.pid.lock().take();
            if let Some(old) = old_pid {
                inner.table.remove(&old);
                if frame.dirty.swap(false, Ordering::SeqCst) {
                    let g = frame
                        .latch
                        .try_s()
                        .expect("unpinned frame cannot be latched");
                    self.write_back(old, &g)?;
                    self.stats.dirty_evictions.inc();
                    self.rec.event(EventKind::BufEvictDirty, old.0, 0);
                }
            }
            return Ok(idx);
        }
        Err(StoreError::PoolExhausted)
    }

    /// WAL-protocol write of one page image.
    fn write_back(&self, pid: PageId, page: &Page) -> StoreResult<()> {
        let timer = Stopwatch::start();
        if let Some(wal) = self.wal.get() {
            wal.flush_to(page.lsn())?;
        } else if page.lsn() != Lsn::ZERO {
            return Err(StoreError::Corrupt(format!(
                "dirty page {pid} with LSN {} but no WAL hook registered",
                page.lsn()
            )));
        }
        let res = self.disk.write_page(pid, page);
        self.writeback_ns.record(timer.elapsed_ns());
        res
    }

    /// Write every dirty page back to disk (checkpoint / clean shutdown).
    pub fn flush_all(&self) -> StoreResult<()> {
        for frame in self.frames.iter() {
            let pid = match *frame.pid.lock() {
                Some(p) => p,
                None => continue,
            };
            if frame.dirty.swap(false, Ordering::SeqCst) {
                let g = frame.latch.s();
                // Re-check identity: the frame cannot have been re-used while
                // we hold the S latch only if it was pinned; guard against
                // the race by re-reading the pid.
                if *frame.pid.lock() == Some(pid) {
                    self.write_back(pid, &g)?;
                    self.flushes.inc();
                    self.rec.event(EventKind::BufFlush, pid.0, 0);
                } else {
                    frame.dirty.store(true, Ordering::SeqCst);
                }
            }
        }
        Ok(())
    }

    /// `(page id, recovery LSN)` of all currently dirty cached pages (the
    /// dirty-page table of a fuzzy checkpoint).
    pub fn dirty_pages(&self) -> Vec<(PageId, Lsn)> {
        let mut out = Vec::new();
        for frame in self.frames.iter() {
            if frame.dirty.load(Ordering::SeqCst) {
                if let Some(pid) = *frame.pid.lock() {
                    out.push((pid, Lsn(frame.rec_lsn.load(Ordering::SeqCst))));
                }
            }
        }
        out
    }
}

/// A pinned page: holds a pin (blocking eviction) and grants access to the
/// frame latch. Latching discipline is up to the caller, per §4.1.
pub struct PinnedPage<'a> {
    pool: &'a BufferPool,
    frame: usize,
    pid: PageId,
}

impl std::fmt::Debug for PinnedPage<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PinnedPage")
            .field("pid", &self.pid)
            .field("frame", &self.frame)
            .finish_non_exhaustive()
    }
}

impl<'a> PinnedPage<'a> {
    /// The pinned page's id.
    pub fn id(&self) -> PageId {
        self.pid
    }

    fn f(&self) -> &'a Frame {
        &self.pool.frames[self.frame]
    }

    /// Latch in S mode.
    pub fn s(&self) -> SGuard<'a, Page> {
        self.f().latch.s()
    }

    /// Latch in U mode ("whenever a node might be written, a U latch is
    /// used", §4.1.1).
    pub fn u(&self) -> UGuard<'a, Page> {
        self.f().latch.u()
    }

    /// Latch in X mode.
    pub fn x(&self) -> XGuard<'a, Page> {
        self.f().latch.x()
    }

    /// Non-blocking latch attempts, used where the latch-ordering protocol
    /// requires conditional acquisition (e.g. climbing *up* a saved path,
    /// §5.2.2(b)).
    pub fn try_s(&self) -> Option<SGuard<'a, Page>> {
        self.f().latch.try_s()
    }

    /// Non-blocking U-latch attempt.
    pub fn try_u(&self) -> Option<UGuard<'a, Page>> {
        self.f().latch.try_u()
    }

    /// Non-blocking X-latch attempt.
    pub fn try_x(&self) -> Option<XGuard<'a, Page>> {
        self.f().latch.try_x()
    }

    /// Mark the page dirty. Called by the logging layer after every applied
    /// page operation; `lsn` is the log record's LSN and becomes the frame's
    /// recovery LSN if the page was clean.
    pub fn mark_dirty(&self) {
        self.mark_dirty_at(Lsn::ZERO);
    }

    /// [`PinnedPage::mark_dirty`] with an explicit recovery LSN.
    pub fn mark_dirty_at(&self, lsn: Lsn) {
        let f = self.f();
        if !f.dirty.swap(true, Ordering::SeqCst) {
            f.rec_lsn.store(lsn.0, Ordering::SeqCst);
        }
    }
}

impl Clone for PinnedPage<'_> {
    fn clone(&self) -> Self {
        self.f().pin.fetch_add(1, Ordering::SeqCst);
        PinnedPage {
            pool: self.pool,
            frame: self.frame,
            pid: self.pid,
        }
    }
}

impl Drop for PinnedPage<'_> {
    fn drop(&mut self) {
        self.f().pin.fetch_sub(1, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::MemDisk;

    fn pool(frames: usize) -> (Arc<MemDisk>, BufferPool) {
        let disk = Arc::new(MemDisk::new());
        let pool = BufferPool::new(Arc::clone(&disk) as Arc<dyn DiskManager>, frames);
        (disk, pool)
    }

    struct NoopWal;
    impl WalFlush for NoopWal {
        fn flush_to(&self, _lsn: Lsn) -> StoreResult<()> {
            Ok(())
        }
    }

    #[test]
    fn create_and_reread() {
        let (_disk, pool) = pool(4);
        {
            let p = pool.fetch_or_create(PageId(1), PageType::Node).unwrap();
            let mut g = p.x();
            g.insert(0, b"cached").unwrap();
            p.mark_dirty();
        }
        let p = pool.fetch(PageId(1)).unwrap();
        assert_eq!(p.s().get(0).unwrap(), b"cached");
        assert_eq!(pool.stats().hits.get(), 1);
    }

    #[test]
    fn miss_on_absent_page() {
        let (_disk, pool) = pool(4);
        assert!(matches!(
            pool.fetch(PageId(9)),
            Err(StoreError::PageNotFound(_))
        ));
    }

    #[test]
    fn eviction_writes_dirty_pages_back() {
        let (disk, pool) = pool(2);
        pool.set_wal_hook(Arc::new(NoopWal));
        for i in 1..=4u64 {
            let p = pool.fetch_or_create(PageId(i), PageType::Node).unwrap();
            let mut g = p.x();
            g.insert(0, format!("page-{i}").as_bytes()).unwrap();
            p.mark_dirty();
        }
        // Pages 1 and 2 must have been evicted and written to "disk".
        let q = disk.read_page(PageId(1)).unwrap();
        assert_eq!(q.get(0).unwrap(), b"page-1");
        // And they can be fetched back.
        let p = pool.fetch(PageId(1)).unwrap();
        assert_eq!(p.s().get(0).unwrap(), b"page-1");
    }

    #[test]
    fn pinned_pages_are_not_evicted() {
        let (_disk, pool) = pool(2);
        pool.set_wal_hook(Arc::new(NoopWal));
        let a = pool.fetch_or_create(PageId(1), PageType::Node).unwrap();
        let b = pool.fetch_or_create(PageId(2), PageType::Node).unwrap();
        // No free frame: fetching a third page must fail, not evict a pin.
        assert!(matches!(
            pool.fetch_or_create(PageId(3), PageType::Node),
            Err(StoreError::PoolExhausted)
        ));
        drop(a);
        assert!(pool.fetch_or_create(PageId(3), PageType::Node).is_ok());
        drop(b);
    }

    #[test]
    fn flush_all_persists_dirty_pages() {
        let (disk, pool) = pool(8);
        pool.set_wal_hook(Arc::new(NoopWal));
        for i in 1..=3u64 {
            let p = pool.fetch_or_create(PageId(i), PageType::Node).unwrap();
            let mut g = p.x();
            g.insert(0, &[i as u8]).unwrap();
            p.mark_dirty();
        }
        assert_eq!(pool.dirty_pages().len(), 3);
        pool.flush_all().unwrap();
        assert!(pool.dirty_pages().is_empty());
        for i in 1..=3u64 {
            assert_eq!(
                disk.read_page(PageId(i)).unwrap().get(0).unwrap(),
                &[i as u8]
            );
        }
    }

    #[test]
    fn clone_pin_keeps_page_resident() {
        let (_disk, pool) = pool(2);
        pool.set_wal_hook(Arc::new(NoopWal));
        let a = pool.fetch_or_create(PageId(1), PageType::Node).unwrap();
        let a2 = a.clone();
        drop(a);
        let _b = pool.fetch_or_create(PageId(2), PageType::Node).unwrap();
        // One frame is still pinned by a2, so a third page cannot come in.
        assert!(matches!(
            pool.fetch_or_create(PageId(3), PageType::Node),
            Err(StoreError::PoolExhausted)
        ));
        drop(a2);
    }

    #[test]
    fn wal_hook_forced_before_dirty_write() {
        struct RecordingWal(AtomicU64);
        impl WalFlush for RecordingWal {
            fn flush_to(&self, lsn: Lsn) -> StoreResult<()> {
                self.0.fetch_max(lsn.0, Ordering::SeqCst);
                Ok(())
            }
        }
        let (_disk, pool) = pool(1);
        let wal = Arc::new(RecordingWal(AtomicU64::new(0)));
        pool.set_wal_hook(Arc::clone(&wal) as Arc<dyn WalFlush>);
        {
            let p = pool.fetch_or_create(PageId(1), PageType::Node).unwrap();
            let mut g = p.x();
            g.insert(0, b"x").unwrap();
            g.set_lsn(Lsn(77));
            p.mark_dirty();
        }
        // Force eviction by fetching another page into the single frame.
        let _p2 = pool.fetch_or_create(PageId(2), PageType::Node).unwrap();
        assert_eq!(
            wal.0.load(Ordering::SeqCst),
            77,
            "log must be forced to the page LSN"
        );
    }
}
