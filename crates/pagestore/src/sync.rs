//! Poison-free `std::sync` wrappers.
//!
//! The repository used to pull `parking_lot` for its non-poisoning mutexes;
//! these thin wrappers give the same call-site ergonomics (`lock()` returns a
//! guard, not a `Result`) over `std::sync` so the workspace builds with no
//! external dependencies. A poisoned mutex is simply re-entered: the latch
//! and lock-table invariants are maintained by explicit state counters, not
//! by unwinding, so poison carries no information here.

use std::sync::{LockResult, PoisonError, WaitTimeoutResult};
use std::time::Duration;

/// Re-export of the std guard; `lock()` below hands it out poison-stripped.
pub use std::sync::MutexGuard;

fn strip<T>(r: LockResult<T>) -> T {
    r.unwrap_or_else(PoisonError::into_inner)
}

/// A mutex whose `lock` never fails (poisoning is ignored).
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T: ?Sized> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

impl<T> Mutex<T> {
    /// Wrap `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        strip(self.0.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the mutex, blocking. Never fails.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        strip(self.0.lock())
    }

    /// Acquire the mutex without blocking; `None` if it is held. Poisoning
    /// is stripped like [`Mutex::lock`].
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Get the protected value through a unique reference, without locking.
    pub fn get_mut(&mut self) -> &mut T {
        strip(self.0.get_mut())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

/// A condition variable paired with [`Mutex`].
///
/// Unlike `parking_lot`, waiting consumes and returns the guard
/// (`guard = cv.wait(guard)`), matching `std`'s move-based API.
#[derive(Default)]
pub struct Condvar(std::sync::Condvar);

impl std::fmt::Debug for Condvar {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Condvar").finish_non_exhaustive()
    }
}

impl Condvar {
    /// A new condition variable.
    pub const fn new() -> Condvar {
        Condvar(std::sync::Condvar::new())
    }

    /// Block until notified; returns the re-acquired guard.
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        strip(self.0.wait(guard))
    }

    /// Block until notified or `timeout` elapses.
    pub fn wait_timeout<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        timeout: Duration,
    ) -> (MutexGuard<'a, T>, WaitTimeoutResult) {
        strip(self.0.wait_timeout(guard, timeout))
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_roundtrip() {
        let m = Mutex::new(1u32);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn try_lock_contended_and_free() {
        let m = Mutex::new(5u32);
        {
            let _g = m.lock();
            assert!(m.try_lock().is_none());
        }
        assert_eq!(*m.try_lock().expect("uncontended"), 5);
    }

    #[test]
    fn poisoned_mutex_still_locks() {
        let m = Arc::new(Mutex::new(0u32));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        // A std mutex would now return Err; the wrapper strips the poison.
        *m.lock() = 7;
        assert_eq!(*m.lock(), 7);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (m, cv) = &*pair2;
            let mut g = m.lock();
            while !*g {
                g = cv.wait(g);
            }
        });
        {
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_all();
        }
        h.join().unwrap();
    }

    #[test]
    fn condvar_wait_timeout_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let (_g, res) = cv.wait_timeout(m.lock(), Duration::from_millis(10));
        assert!(res.timed_out());
    }
}
