//! Identifier newtypes shared by the whole workspace.

use std::fmt;

/// Identifier of a page on durable storage.
///
/// Page ids are dense indexes into the backing file. Page 0 is the store meta
/// page, pages `1..=n` are space-map bitmap pages, and the remainder are
/// available for allocation (see [`crate::space`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageId(pub u64);

impl PageId {
    /// Sentinel meaning "no page" (used for absent side pointers and the
    /// like). Page 0 is the meta page, which is never a tree node, so 0 is a
    /// safe sentinel for tree-level pointers.
    pub const INVALID: PageId = PageId(0);

    /// Whether this id refers to an actual page (not the sentinel).
    #[inline]
    pub fn is_valid(self) -> bool {
        self.0 != 0
    }
}

impl fmt::Display for PageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// Log sequence number.
///
/// LSNs are byte offsets into the log, so they are totally ordered and
/// monotonically increasing. The LSN stored in a page header is the paper's
/// *state identifier* (§5.2): "Log sequence numbers are used for state
/// identifiers in many commercial systems."
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Lsn(pub u64);

impl Lsn {
    /// LSN smaller than every real LSN; the state id of a freshly formatted
    /// page that has never been logged against.
    pub const ZERO: Lsn = Lsn(0);

    /// Largest possible LSN; useful as an upper bound when flushing.
    pub const MAX: Lsn = Lsn(u64::MAX);
}

impl fmt::Display for Lsn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_id_sentinel() {
        assert!(!PageId::INVALID.is_valid());
        assert!(PageId(1).is_valid());
        assert_eq!(PageId::INVALID, PageId(0));
    }

    #[test]
    fn lsn_ordering() {
        assert!(Lsn::ZERO < Lsn(1));
        assert!(Lsn(1) < Lsn::MAX);
        assert_eq!(Lsn::default(), Lsn::ZERO);
    }

    #[test]
    fn display_forms() {
        assert_eq!(PageId(7).to_string(), "P7");
        assert_eq!(Lsn(42).to_string(), "L42");
    }
}
