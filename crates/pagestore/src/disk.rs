//! Durable page storage with an explicit volatile/durable boundary.
//!
//! The paper's recovery argument quantifies over crashes that lose all
//! volatile state (the buffer pool and the unforced log tail) while keeping
//! everything that reached durable storage. [`MemDisk`] makes that boundary
//! testable in-process: what has been `write_page`d is durable; a crash is
//! simulated by [`MemDisk::snapshot`]-ing the durable image and rebuilding the
//! system on the snapshot, discarding every in-memory structure.
//!
//! [`FileDisk`] provides the same interface over a real file for benchmarks
//! that want to include I/O in the measured path.

use crate::error::{StoreError, StoreResult};
use crate::fault::{FaultSite, InjectorHandle};
use crate::ids::PageId;
use crate::page::{Page, PAGE_SIZE};
use crate::sync::Mutex;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;

/// Abstract durable page storage.
pub trait DiskManager: Send + Sync {
    /// Read a page image. Fails if the page was never written.
    fn read_page(&self, pid: PageId) -> StoreResult<Page>;
    /// Durably write a page image (extends the store if needed).
    fn write_page(&self, pid: PageId, page: &Page) -> StoreResult<()>;
    /// One past the highest page id ever written.
    fn num_pages(&self) -> u64;
    /// Flush OS buffers, where applicable.
    fn sync(&self) -> StoreResult<()> {
        Ok(())
    }
}

/// In-memory "durable" storage used by tests and the crash harness.
pub struct MemDisk {
    pages: Mutex<Vec<Option<Box<[u8]>>>>,
    injector: Option<InjectorHandle>,
}

impl std::fmt::Debug for MemDisk {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemDisk").finish_non_exhaustive()
    }
}

impl MemDisk {
    /// An empty store.
    pub fn new() -> MemDisk {
        MemDisk {
            pages: Mutex::new(Vec::new()),
            injector: None,
        }
    }

    /// An empty store whose page writes consult `injector` first — the
    /// simulation kit's crash-point hook.
    pub fn with_injector(injector: InjectorHandle) -> MemDisk {
        MemDisk {
            pages: Mutex::new(Vec::new()),
            injector: Some(injector),
        }
    }

    /// Copy the current durable image — the survivor of a simulated crash.
    /// The snapshot carries no injector: recovery must run unimpeded.
    pub fn snapshot(&self) -> MemDisk {
        MemDisk {
            pages: Mutex::new(self.pages.lock().clone()),
            injector: None,
        }
    }
}

impl Default for MemDisk {
    fn default() -> Self {
        Self::new()
    }
}

impl DiskManager for MemDisk {
    fn read_page(&self, pid: PageId) -> StoreResult<Page> {
        let pages = self.pages.lock();
        match pages.get(pid.0 as usize) {
            Some(Some(bytes)) => Page::from_bytes(bytes),
            _ => Err(StoreError::PageNotFound(pid)),
        }
    }

    fn write_page(&self, pid: PageId, page: &Page) -> StoreResult<()> {
        if let Some(inj) = &self.injector {
            inj.check(FaultSite::PageWrite(pid))?;
        }
        let mut pages = self.pages.lock();
        let idx = pid.0 as usize;
        if pages.len() <= idx {
            pages.resize_with(idx + 1, || None);
        }
        pages[idx] = Some(page.as_bytes().to_vec().into_boxed_slice());
        Ok(())
    }

    fn num_pages(&self) -> u64 {
        self.pages.lock().len() as u64
    }
}

/// File-backed page storage for benchmarks.
pub struct FileDisk {
    file: Mutex<File>,
}

impl std::fmt::Debug for FileDisk {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FileDisk").finish_non_exhaustive()
    }
}

impl FileDisk {
    /// Open (or create) the backing file.
    pub fn open(path: &Path) -> StoreResult<FileDisk> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)
            .map_err(|e| StoreError::Corrupt(format!("open {path:?}: {e}")))?;
        Ok(FileDisk {
            file: Mutex::new(file),
        })
    }
}

impl DiskManager for FileDisk {
    fn read_page(&self, pid: PageId) -> StoreResult<Page> {
        let mut file = self.file.lock();
        let off = pid.0 * PAGE_SIZE as u64;
        let len = file.metadata().map(|m| m.len()).unwrap_or(0);
        if off + PAGE_SIZE as u64 > len {
            return Err(StoreError::PageNotFound(pid));
        }
        let mut buf = vec![0u8; PAGE_SIZE];
        file.seek(SeekFrom::Start(off))
            .and_then(|_| file.read_exact(&mut buf))
            .map_err(|e| StoreError::Corrupt(format!("read {pid}: {e}")))?;
        Page::from_bytes(&buf)
    }

    fn write_page(&self, pid: PageId, page: &Page) -> StoreResult<()> {
        let mut file = self.file.lock();
        let off = pid.0 * PAGE_SIZE as u64;
        file.seek(SeekFrom::Start(off))
            .and_then(|_| file.write_all(page.as_bytes()))
            .map_err(|e| StoreError::Corrupt(format!("write {pid}: {e}")))
    }

    fn num_pages(&self) -> u64 {
        let file = self.file.lock();
        file.metadata()
            .map(|m| m.len() / PAGE_SIZE as u64)
            .unwrap_or(0)
    }

    fn sync(&self) -> StoreResult<()> {
        self.file
            .lock()
            .sync_data()
            .map_err(|e| StoreError::Corrupt(format!("sync: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::PageType;

    #[test]
    fn memdisk_roundtrip() {
        let d = MemDisk::new();
        let mut p = Page::new(PageType::Node);
        p.insert(0, b"payload").unwrap();
        d.write_page(PageId(3), &p).unwrap();
        assert_eq!(d.num_pages(), 4);
        let q = d.read_page(PageId(3)).unwrap();
        assert_eq!(q.get(0).unwrap(), b"payload");
        assert!(matches!(
            d.read_page(PageId(2)),
            Err(StoreError::PageNotFound(_))
        ));
        assert!(matches!(
            d.read_page(PageId(9)),
            Err(StoreError::PageNotFound(_))
        ));
    }

    #[test]
    fn snapshot_is_independent() {
        let d = MemDisk::new();
        let p = Page::new(PageType::Node);
        d.write_page(PageId(1), &p).unwrap();
        let snap = d.snapshot();
        // Writes after the crash point do not reach the snapshot.
        d.write_page(PageId(2), &p).unwrap();
        assert_eq!(snap.num_pages(), 2);
        assert!(snap.read_page(PageId(2)).is_err());
        assert!(snap.read_page(PageId(1)).is_ok());
    }

    #[test]
    fn filedisk_roundtrip() {
        let dir = std::env::temp_dir().join(format!("pitree-disk-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("store.db");
        let d = FileDisk::open(&path).unwrap();
        let mut p = Page::new(PageType::Node);
        p.insert(0, b"file-bytes").unwrap();
        d.write_page(PageId(5), &p).unwrap();
        d.sync().unwrap();
        assert_eq!(d.num_pages(), 6);
        let q = d.read_page(PageId(5)).unwrap();
        assert_eq!(q.get(0).unwrap(), b"file-bytes");
        assert!(d.read_page(PageId(6)).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
