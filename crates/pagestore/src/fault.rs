//! Crash-point injection for deterministic simulation testing.
//!
//! The paper's recovery argument quantifies over crashes at *every* point
//! where volatile state and durable state can diverge. Those points are
//! exactly the durable-write boundaries: a page image reaching the disk and
//! a log force reaching the log store. A [`FaultInjector`] is consulted
//! immediately **before** each such boundary; by returning an error it
//! simulates the machine dying an instant before the write, after which the
//! simulation kit snapshots the durable image and runs recovery on it.
//!
//! The trait lives here (rather than in `pitree-sim`) because the injectable
//! components — [`crate::disk::MemDisk`] and the WAL's `MemLogStore` — sit
//! below the simulation kit in the crate graph. Production stores simply
//! have no injector installed; the hook is a branch on an `Option`.

use crate::error::{StoreError, StoreResult};
use crate::ids::PageId;
use std::sync::Arc;

/// A durable-write boundary at which a simulated crash may be injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSite {
    /// A page image is about to be written to durable storage.
    PageWrite(PageId),
    /// `bytes` of log are about to be appended to the durable log store
    /// (one WAL force).
    LogAppend {
        /// Length of the force about to happen.
        bytes: usize,
    },
}

impl FaultSite {
    /// Short human-readable label, used in injected-crash errors.
    pub fn describe(&self) -> String {
        match self {
            FaultSite::PageWrite(pid) => format!("page-write({pid})"),
            FaultSite::LogAppend { bytes } => format!("log-append({bytes}B)"),
        }
    }
}

/// Decides, at each durable-write boundary, whether the simulated machine is
/// still alive.
///
/// Returning `Err` (conventionally [`injected_crash`]) aborts the write —
/// nothing reaches durable storage — and the error propagates to whatever
/// operation required the write. A deterministic injector (see
/// `pitree-sim`'s `CrashPlan`) keeps failing every subsequent call so that
/// no durable state changes after the "crash", exactly as on a dead machine.
pub trait FaultInjector: Send + Sync {
    /// Called before the durable effect at `site`. `Ok(())` lets it proceed.
    fn check(&self, site: FaultSite) -> StoreResult<()>;
}

/// Shared handle to an injector, as stored by the injectable components.
pub type InjectorHandle = Arc<dyn FaultInjector>;

/// The canonical injected-crash error for `site`.
pub fn injected_crash(site: FaultSite) -> StoreError {
    StoreError::InjectedCrash {
        site: site.describe(),
    }
}

/// Whether `err` is an injected simulated crash (as opposed to a real bug).
pub fn is_injected(err: &StoreError) -> bool {
    matches!(err, StoreError::InjectedCrash { .. })
}
