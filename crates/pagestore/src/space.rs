//! Space management: page allocation state kept in ordinary bitmap pages.
//!
//! Layout of a store:
//!
//! ```text
//! page 0          meta page (space-map geometry in slot 0; trees append
//!                 their own meta records in later slots)
//! pages 1..=k     space-map bitmap pages; global bit `b` describes page `b`
//! pages k+1..     allocatable
//! ```
//!
//! Because allocation state lives in normal pages, *allocation and
//! de-allocation are logged with the same physiological page operations as
//! everything else* ([`crate::pageops::PageOp::SetBit`] / `ClearBit`), and
//! recovery replays them with no special cases. This is what lets a node
//! split's page allocation be part of the split's atomic action, as §5.3
//! ("the space management information is X latched and a new node is
//! allocated") requires.
//!
//! The allocation latch is ordered *after* every tree-node latch, matching
//! §4.1.1: "Space management information can be ordered last."

use crate::buffer::BufferPool;
use crate::error::{StoreError, StoreResult};
use crate::ids::PageId;
use crate::latch::{Latch, XGuard};
use crate::page::{Page, PageType};

const META_MAGIC: u32 = 0x5049_5354; // "PIST"

/// Geometry + allocation hint for a store's space map.
pub struct SpaceMap {
    /// Number of bitmap pages (they are pages `1..=bitmap_pages`).
    bitmap_pages: u32,
    /// Hard cap on allocatable page ids.
    max_pages: u64,
    /// Serializes allocation decisions; protects the scan hint.
    latch: Latch<u64>,
}

impl std::fmt::Debug for SpaceMap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpaceMap")
            .field("bitmap_pages", &self.bitmap_pages)
            .field("max_pages", &self.max_pages)
            .finish_non_exhaustive()
    }
}

/// Decoded meta record (slot 0 of page 0).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetaRecord {
    /// Number of bitmap pages.
    pub bitmap_pages: u32,
    /// Hard cap on allocatable page ids.
    pub max_pages: u64,
}

impl MetaRecord {
    /// Encode for storage in the meta page.
    pub fn encode(&self) -> Vec<u8> {
        let mut v = Vec::with_capacity(16);
        v.extend_from_slice(&META_MAGIC.to_le_bytes());
        v.extend_from_slice(&self.bitmap_pages.to_le_bytes());
        v.extend_from_slice(&self.max_pages.to_le_bytes());
        v
    }

    /// Decode from the meta page record.
    pub fn decode(bytes: &[u8]) -> StoreResult<MetaRecord> {
        if bytes.len() != 16 {
            return Err(StoreError::Corrupt("meta record wrong length".into()));
        }
        let magic = u32::from_le_bytes(bytes[0..4].try_into().unwrap());
        if magic != META_MAGIC {
            return Err(StoreError::Corrupt(format!("bad meta magic {magic:#x}")));
        }
        Ok(MetaRecord {
            bitmap_pages: u32::from_le_bytes(bytes[4..8].try_into().unwrap()),
            max_pages: u64::from_le_bytes(bytes[8..16].try_into().unwrap()),
        })
    }
}

impl SpaceMap {
    /// Initialize a brand-new store able to hold at least `max_pages` pages:
    /// format the meta page and bitmap pages and mark the reserved pages
    /// (meta + bitmaps) allocated. Runs before logging starts (the moral
    /// equivalent of `mkfs`), so writes bypass the WAL deliberately.
    pub fn init(pool: &BufferPool, max_pages: u64) -> StoreResult<SpaceMap> {
        let bits_per = Page::BITS_PER_SPACEMAP_PAGE as u64;
        let bitmap_pages = max_pages.div_ceil(bits_per).max(1) as u32;
        // Meta page.
        {
            let meta = pool.fetch_or_create(PageId(0), PageType::Meta)?;
            let mut g = meta.x();
            g.format(PageType::Meta);
            g.insert(
                0,
                &MetaRecord {
                    bitmap_pages,
                    max_pages,
                }
                .encode(),
            )?;
            // pitree-lint: allow(log-before-dirty) formatting a fresh store; the WAL does not exist yet
            meta.mark_dirty();
        }
        // Bitmap pages, with reserved bits set.
        for j in 1..=bitmap_pages as u64 {
            let bm = pool.fetch_or_create(PageId(j), PageType::SpaceMap)?;
            let mut g = bm.x();
            g.format(PageType::SpaceMap);
            let lo = (j - 1) * bits_per;
            // Reserve page ids 0..=bitmap_pages.
            for b in 0..bits_per {
                if lo + b <= bitmap_pages as u64 {
                    g.sm_set_bit(b as usize, true);
                }
            }
            // pitree-lint: allow(log-before-dirty) formatting a fresh store; the WAL does not exist yet
            bm.mark_dirty();
        }
        pool.flush_all()?;
        Ok(SpaceMap {
            bitmap_pages,
            max_pages,
            latch: Latch::new(bitmap_pages as u64 + 1),
        })
    }

    /// Open the space map of an existing store by reading the meta page.
    pub fn open(pool: &BufferPool) -> StoreResult<SpaceMap> {
        let meta = pool.fetch(PageId(0))?;
        let g = meta.s();
        if g.page_type()? != PageType::Meta {
            return Err(StoreError::WrongPageType {
                page: PageId(0),
                expected: "meta",
            });
        }
        let rec = MetaRecord::decode(g.get(0)?)?;
        Ok(SpaceMap {
            bitmap_pages: rec.bitmap_pages,
            max_pages: rec.max_pages,
            latch: Latch::new(rec.bitmap_pages as u64 + 1),
        })
    }

    /// Number of bitmap pages.
    pub fn bitmap_pages(&self) -> u32 {
        self.bitmap_pages
    }

    /// First allocatable page id (everything below is reserved).
    pub fn first_allocatable(&self) -> PageId {
        PageId(self.bitmap_pages as u64 + 1)
    }

    /// Total pages the map allows (the creation-time cap, bounded by the
    /// bitmap extent).
    pub fn capacity(&self) -> u64 {
        self.max_pages
            .max(self.bitmap_pages as u64 + 1)
            .min(self.bitmap_pages as u64 * Page::BITS_PER_SPACEMAP_PAGE as u64)
    }

    /// Which bitmap page and bit describe page `pid`.
    pub fn locate(&self, pid: PageId) -> (PageId, u32) {
        let bits_per = Page::BITS_PER_SPACEMAP_PAGE as u64;
        (PageId(1 + pid.0 / bits_per), (pid.0 % bits_per) as u32)
    }

    /// Take the allocation latch. The returned guard serializes all
    /// allocation decisions; callers keep it until they have *logged* the
    /// corresponding `SetBit`/`ClearBit` so no other allocator can race them.
    pub fn lock_alloc(&self) -> AllocGuard<'_> {
        AllocGuard {
            map: self,
            hint: self.latch.x(),
        }
    }

    /// Whether `pid` is currently marked allocated (diagnostics and the
    /// well-formedness checker; takes only an S latch on the bitmap page).
    pub fn is_allocated(&self, pool: &BufferPool, pid: PageId) -> StoreResult<bool> {
        let (bm_pid, bit) = self.locate(pid);
        if bm_pid.0 > self.bitmap_pages as u64 {
            return Ok(false);
        }
        let bm = pool.fetch(bm_pid)?;
        Ok(bm.s().sm_get_bit(bit as usize))
    }

    /// Count allocated pages (utilization experiments).
    pub fn allocated_count(&self, pool: &BufferPool) -> StoreResult<u64> {
        let mut count = 0;
        for j in 1..=self.bitmap_pages as u64 {
            let bm = pool.fetch(PageId(j))?;
            let g = bm.s();
            for b in 0..Page::BITS_PER_SPACEMAP_PAGE {
                if g.sm_get_bit(b) {
                    count += 1;
                }
            }
        }
        Ok(count)
    }
}

/// Holder of the allocation latch.
pub struct AllocGuard<'a> {
    map: &'a SpaceMap,
    hint: XGuard<'a, u64>,
}

impl std::fmt::Debug for AllocGuard<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AllocGuard").finish_non_exhaustive()
    }
}

impl AllocGuard<'_> {
    /// Find a free page. Returns `(new page id, bitmap page id, bit index in
    /// that bitmap page)`. The bit is **not** set here — the caller logs and
    /// applies the `SetBit` through its atomic action while still holding
    /// this guard, so that the allocation is recoverable.
    pub fn find_free(&mut self, pool: &BufferPool) -> StoreResult<(PageId, PageId, u32)> {
        let bits_per = Page::BITS_PER_SPACEMAP_PAGE as u64;
        let cap = self.map.capacity();
        let start = *self.hint;
        for probe in 0..cap {
            let candidate = {
                let c = start + probe;
                if c >= cap {
                    c - cap
                } else {
                    c
                }
            };
            if candidate <= self.map.bitmap_pages as u64 {
                continue; // reserved ids
            }
            let bm_pid = PageId(1 + candidate / bits_per);
            let bit = (candidate % bits_per) as u32;
            let bm = pool.fetch(bm_pid)?;
            let free = !bm.s().sm_get_bit(bit as usize);
            if free {
                *self.hint = candidate + 1;
                return Ok((PageId(candidate), bm_pid, bit));
            }
        }
        Err(StoreError::OutOfSpace)
    }

    /// Record a freed page id as the next allocation hint so freed space is
    /// found quickly.
    pub fn note_freed(&mut self, pid: PageId) {
        if pid.0 < *self.hint {
            *self.hint = pid.0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::MemDisk;
    use std::sync::Arc;

    fn fresh_pool() -> BufferPool {
        BufferPool::new(Arc::new(MemDisk::new()), 64)
    }

    #[test]
    fn init_reserves_meta_and_bitmaps() {
        let pool = fresh_pool();
        let sm = SpaceMap::init(&pool, 10_000).unwrap();
        assert_eq!(sm.bitmap_pages(), 1);
        assert!(sm.is_allocated(&pool, PageId(0)).unwrap());
        assert!(sm.is_allocated(&pool, PageId(1)).unwrap());
        assert!(!sm.is_allocated(&pool, PageId(2)).unwrap());
        assert_eq!(sm.first_allocatable(), PageId(2));
    }

    #[test]
    fn find_free_skips_reserved_and_allocated() {
        let pool = fresh_pool();
        let sm = SpaceMap::init(&pool, 10_000).unwrap();
        let mut alloc = sm.lock_alloc();
        let (pid, bm_pid, bit) = alloc.find_free(&pool).unwrap();
        assert_eq!(pid, PageId(2));
        assert_eq!(bm_pid, PageId(1));
        assert_eq!(bit, 2);
        // Simulate the caller setting the bit.
        {
            let bm = pool.fetch(bm_pid).unwrap();
            let mut g = bm.x();
            g.sm_set_bit(bit as usize, true);
            bm.mark_dirty();
        }
        let (pid2, _, _) = alloc.find_free(&pool).unwrap();
        assert_eq!(pid2, PageId(3));
    }

    #[test]
    fn multi_bitmap_page_geometry() {
        let pool = fresh_pool();
        let per = Page::BITS_PER_SPACEMAP_PAGE as u64;
        let sm = SpaceMap::init(&pool, per * 2 + 5).unwrap();
        assert_eq!(sm.bitmap_pages(), 3);
        let (bm, bit) = sm.locate(PageId(per + 7));
        assert_eq!(bm, PageId(2));
        assert_eq!(bit, 7);
    }

    #[test]
    fn open_roundtrips_geometry() {
        let disk = Arc::new(MemDisk::new());
        {
            let pool = BufferPool::new(Arc::clone(&disk) as Arc<dyn crate::disk::DiskManager>, 64);
            SpaceMap::init(&pool, 50_000).unwrap();
            pool.flush_all().unwrap();
        }
        let pool = BufferPool::new(disk, 64);
        let sm = SpaceMap::open(&pool).unwrap();
        assert_eq!(sm.bitmap_pages(), 2);
    }

    #[test]
    fn note_freed_rewinds_hint() {
        let pool = fresh_pool();
        let sm = SpaceMap::init(&pool, 1000).unwrap();
        let mut alloc = sm.lock_alloc();
        let (pid, bm_pid, bit) = alloc.find_free(&pool).unwrap();
        {
            let bm = pool.fetch(bm_pid).unwrap();
            let mut g = bm.x();
            g.sm_set_bit(bit as usize, true);
        }
        // Free it again and rewind the hint.
        {
            let bm = pool.fetch(bm_pid).unwrap();
            let mut g = bm.x();
            g.sm_set_bit(bit as usize, false);
        }
        alloc.note_freed(pid);
        let (pid2, _, _) = alloc.find_free(&pool).unwrap();
        assert_eq!(pid2, pid);
    }

    #[test]
    fn meta_record_codec_rejects_garbage() {
        assert!(MetaRecord::decode(b"short").is_err());
        assert!(MetaRecord::decode(&[0u8; 16]).is_err());
        let rec = MetaRecord {
            bitmap_pages: 7,
            max_pages: 500,
        };
        assert_eq!(MetaRecord::decode(&rec.encode()).unwrap(), rec);
    }
}
