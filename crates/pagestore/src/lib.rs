#![warn(missing_docs)]
//! Page storage substrate for the Π-tree reproduction.
//!
//! This crate provides everything below the write-ahead log:
//!
//! * [`page`] — fixed-size slotted pages with a page LSN that doubles as the
//!   *state identifier* of §5.2 of the paper (commercial systems use LSNs for
//!   state ids, as the paper notes).
//! * [`pageops`] — the physiological page-operation vocabulary. Every tree
//!   structure change and record update in the repository is expressed as a
//!   sequence of these operations, which is what makes recovery tree-agnostic.
//! * [`latch`] — S / U / X latches with U→X promotion (§4.1.1). Latches are
//!   semaphores whose usage pattern guarantees absence of deadlock; they never
//!   interact with the database lock manager.
//! * [`disk`] — durable storage with an explicit volatile/durable split and a
//!   `crash()` operation used by the recovery test harness.
//! * [`buffer`] — a buffer pool of latched frames enforcing the WAL protocol
//!   (a dirty page may not reach disk before the log covering it).
//! * [`space`] — bitmap-page space management. Allocation state lives in
//!   ordinary pages so that recovery replays it with no special cases, and
//!   both de-allocation policies of §5.2.2 are supported.

pub mod buffer;
pub mod disk;
pub mod error;
pub mod fault;
pub mod ids;
pub mod latch;
pub mod page;
pub mod pageops;
pub mod space;
pub mod sync;

pub use buffer::{page_shard, BufferPool, PinnedPage, RedoHook};
pub use disk::{DiskManager, MemDisk};
pub use error::{StoreError, StoreResult};
pub use fault::{FaultInjector, FaultSite};
pub use ids::{Lsn, PageId};
pub use latch::{Latch, LatchMode, SGuard, UGuard, XGuard};
pub use page::{Page, PageType, PAGE_SIZE};
pub use pageops::PageOp;
pub use space::SpaceMap;
