// pitree-lint: allow-file(log-before-dirty) baselines are deliberately non-recoverable: no WAL, dirty pages are volatile
//! B+-tree with **serial structure changes** — ARIES/IM-flavored \[14\].
//!
//! "By contrast, in ARIES/IM complete structural changes are *serial*"
//! (§1 point 2). This baseline makes that cost explicit: a tree-wide
//! reader/writer latch admits ordinary operations concurrently (they
//! latch-couple node by node), but any operation that needs a split takes
//! the tree latch **exclusively**, quiescing everything while the entire
//! multi-level structure change runs as one monolithic, serial unit.

use crate::node::{
    format_node, grow_root, index_entry, is_full, level, route, split_node, BaseStore,
};
use crate::ConcurrentIndex;
use pitree_pagestore::latch::Latch;
use pitree_pagestore::page::{Page, PageType};
use pitree_pagestore::PageId;

/// A B+-tree whose structure changes are serialized behind a tree latch.
pub struct SerialSmoTree {
    store: BaseStore,
    root: PageId,
    max_entries: usize,
    /// The tree-wide SMO latch: shared for ordinary operations, exclusive
    /// for structure changes.
    smo: Latch<()>,
    /// Tree-wide exclusive acquisitions (every one quiesces all activity).
    tree_x: std::sync::atomic::AtomicU64,
}

impl std::fmt::Debug for SerialSmoTree {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SerialSmoTree").finish_non_exhaustive()
    }
}

impl SerialSmoTree {
    /// Create an empty tree with at most `max_entries` entries per node.
    pub fn new(frames: usize, max_entries: usize) -> SerialSmoTree {
        let store = BaseStore::new_mem(frames);
        let root = store.alloc();
        {
            let page = store.pool.fetch_or_create(root, PageType::Free).unwrap();
            let mut g = page.x();
            format_node(&mut g, 0);
            page.mark_dirty();
        }
        SerialSmoTree {
            store,
            root,
            max_entries,
            smo: Latch::new(()),
            tree_x: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Tree-wide exclusive acquisitions so far.
    pub fn tree_exclusive(&self) -> u64 {
        self.tree_x.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Fast path: insert without structure change. Returns `false` when a
    /// split would be required.
    fn try_insert_fast(&self, key: &[u8], entry: &[u8]) -> bool {
        let pool = &self.store.pool;
        let mut _keepalive = pool.fetch(self.root).unwrap();
        let mut g = _keepalive.x();
        while level(&g) > 0 {
            let child = route(&g, key).unwrap();
            let cpin = pool.fetch(child).unwrap();
            let cg = cpin.x();
            drop(g);
            _keepalive = cpin;
            g = cg;
        }
        if g.keyed_find(key).unwrap().is_ok() {
            g.keyed_update(entry).unwrap();
            _keepalive.mark_dirty();
            return true;
        }
        if is_full(&g, entry.len(), self.max_entries) {
            return false;
        }
        g.keyed_insert(entry).unwrap();
        _keepalive.mark_dirty();
        true
    }

    /// Slow path under the exclusive tree latch: split every full node on
    /// the way down (preventive splitting is safe here — we are alone), then
    /// insert.
    fn insert_serial_smo(&self, key: &[u8], entry: &[u8]) {
        let pool = &self.store.pool;
        let safe_len = entry.len().max(key.len() + 16);
        let mut pid = self.root;
        loop {
            let pin = pool.fetch(pid).unwrap();
            let mut g = pin.x();
            if is_full(&g, safe_len, self.max_entries) {
                if pid == self.root {
                    grow_root(&self.store, &pin, &mut g);
                    // Revisit the root: it now has room, and the descent
                    // branch below will preventively split the full child.
                    continue;
                }
                unreachable!("non-root nodes are split preventively by their parent");
            }
            if level(&g) == 0 {
                if g.keyed_find(key).unwrap().is_ok() {
                    g.keyed_update(entry).unwrap();
                } else {
                    g.keyed_insert(entry).unwrap();
                }
                pin.mark_dirty();
                return;
            }
            // Preventively split the routed child if it is full, posting the
            // separator into `g` (which has room — checked above).
            let child = route(&g, key).unwrap();
            let cpin = pool.fetch(child).unwrap();
            let mut cg = cpin.x();
            if is_full(&cg, safe_len, self.max_entries) {
                let (sep, new_pid) = split_node(&self.store, &cpin, &mut cg);
                g.keyed_insert(&index_entry(&sep, new_pid)).unwrap();
                pin.mark_dirty();
                if key >= sep.as_slice() {
                    pid = new_pid;
                    continue;
                }
            }
            pid = child;
        }
    }
}

impl ConcurrentIndex for SerialSmoTree {
    fn insert(&self, key: &[u8], value: &[u8]) {
        let entry = Page::make_entry(key, value);
        {
            let _shared = self.smo.s();
            if self.try_insert_fast(key, &entry) {
                return;
            }
        }
        // Structure change required: quiesce the whole tree.
        let _exclusive = self.smo.x();
        self.tree_x
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        self.insert_serial_smo(key, &entry);
    }

    fn get(&self, key: &[u8]) -> Option<Vec<u8>> {
        let _shared = self.smo.s();
        let pool = &self.store.pool;
        let mut _keepalive = pool.fetch(self.root).unwrap();
        let mut g = _keepalive.s();
        while level(&g) > 0 {
            let child = route(&g, key).unwrap();
            let cpin = pool.fetch(child).unwrap();
            let cg = cpin.s();
            drop(g);
            _keepalive = cpin;
            g = cg;
        }
        match g.keyed_find(key).unwrap() {
            Ok(slot) => Some(Page::entry_payload(g.get(slot).unwrap()).to_vec()),
            Err(_) => None,
        }
    }

    fn delete(&self, key: &[u8]) -> bool {
        let _shared = self.smo.s();
        let pool = &self.store.pool;
        let mut _keepalive = pool.fetch(self.root).unwrap();
        let mut g = _keepalive.x();
        while level(&g) > 0 {
            let child = route(&g, key).unwrap();
            let cpin = pool.fetch(child).unwrap();
            let cg = cpin.x();
            drop(g);
            _keepalive = cpin;
            g = cg;
        }
        match g.keyed_find(key).unwrap() {
            Ok(_) => {
                g.keyed_remove(key).unwrap();
                _keepalive.mark_dirty();
                true
            }
            Err(_) => false,
        }
    }

    fn name(&self) -> &'static str {
        "serial-smo"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn key(i: u64) -> Vec<u8> {
        i.to_be_bytes().to_vec()
    }

    #[test]
    fn insert_get_roundtrip() {
        let t = SerialSmoTree::new(256, 6);
        for i in 0..300u64 {
            t.insert(&key(i), format!("v{i}").as_bytes());
        }
        for i in 0..300u64 {
            assert_eq!(
                t.get(&key(i)),
                Some(format!("v{i}").into_bytes()),
                "key {i}"
            );
        }
        assert_eq!(t.get(&key(999)), None);
    }

    #[test]
    fn replace_and_delete() {
        let t = SerialSmoTree::new(64, 6);
        t.insert(b"k", b"v1");
        t.insert(b"k", b"v2");
        assert_eq!(t.get(b"k"), Some(b"v2".to_vec()));
        assert!(t.delete(b"k"));
        assert!(!t.delete(b"k"));
    }

    #[test]
    fn random_order_inserts() {
        let t = SerialSmoTree::new(512, 5);
        let mut keys: Vec<u64> = (0..400).collect();
        pitree_sim::SimRng::new(0xBA5E2).shuffle(&mut keys);
        for &i in &keys {
            t.insert(&key(i), b"x");
        }
        for i in 0..400u64 {
            assert_eq!(t.get(&key(i)), Some(b"x".to_vec()), "key {i}");
        }
    }

    #[test]
    fn concurrent_inserts_and_reads() {
        let t = Arc::new(SerialSmoTree::new(1024, 8));
        for i in 0..200u64 {
            t.insert(&key(i), b"pre");
        }
        std::thread::scope(|s| {
            for tid in 0..6u64 {
                let t = Arc::clone(&t);
                s.spawn(move || {
                    for i in 0..200 {
                        t.insert(&key(1000 + i * 6 + tid), b"v");
                        assert!(t.get(&key(i % 200)).is_some());
                    }
                });
            }
        });
        for k in 0..1200u64 {
            assert_eq!(t.get(&key(1000 + k)), Some(b"v".to_vec()), "key {k}");
        }
    }
}
