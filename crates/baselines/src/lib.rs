#![warn(missing_docs)]
//! Baseline B+-tree concurrency protocols, for the experiments that
//! reproduce the paper's comparative claims.
//!
//! The paper argues (§1, citing Srinivasan & Carey \[18\]) that B-link-style
//! approaches out-scale both classic **lock coupling** \[Bayer & Schkolnick\]
//! and designs with **serial structure changes** (ARIES/IM \[14\]: "complete
//! structural changes are *serial*"). These two baselines implement those
//! protocols over the *same* page/latch substrate as the Π-tree so that
//! experiment E1 compares protocols, not storage engines.
//!
//! Neither baseline logs: this biases the comparison *against* the Π-tree
//! (which pays full WAL costs), making the Π-tree's concurrency win
//! conservative.
//!
//! Simplifications (documented in DESIGN.md): baselines support insert /
//! get / scan and delete-without-rebalancing; nodes never merge.

pub mod lock_coupling;
pub mod node;
pub mod optimistic;
pub mod serial_smo;

pub use lock_coupling::LockCouplingTree;
pub use optimistic::OptimisticCouplingTree;
pub use serial_smo::SerialSmoTree;

/// The uniform surface the concurrency experiments drive.
pub trait ConcurrentIndex: Send + Sync {
    /// Insert or replace.
    fn insert(&self, key: &[u8], value: &[u8]);
    /// Point lookup.
    fn get(&self, key: &[u8]) -> Option<Vec<u8>>;
    /// Remove; returns whether the key existed.
    fn delete(&self, key: &[u8]) -> bool;
    /// Protocol name for report tables.
    fn name(&self) -> &'static str;
}
