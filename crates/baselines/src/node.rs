// pitree-lint: allow-file(log-before-dirty) baselines are deliberately non-recoverable: no WAL, dirty pages are volatile
//! Shared plain-B+-tree node layout for the baselines.
//!
//! Slot 0 is a one-byte header holding the node level; slots 1.. are keyed
//! entries (leaf: key→value, index: key→child page id). Index nodes keep a
//! first entry with the empty key so that `keyed_floor` always routes. There
//! are **no side pointers** — these are plain B+-trees, which is exactly the
//! structural difference the experiments measure.

use pitree_pagestore::buffer::BufferPool;
use pitree_pagestore::page::{Page, PageType};
use pitree_pagestore::{PageId, StoreResult};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Minimal store for the baselines: a pool plus a bump allocator (baselines
/// never free pages).
pub struct BaseStore {
    /// The shared buffer pool.
    pub pool: Arc<BufferPool>,
    next_page: AtomicU64,
}

impl std::fmt::Debug for BaseStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BaseStore").finish_non_exhaustive()
    }
}

impl BaseStore {
    /// A store over an in-memory disk with `frames` buffer frames.
    pub fn new_mem(frames: usize) -> BaseStore {
        let disk = Arc::new(pitree_pagestore::MemDisk::new());
        BaseStore {
            pool: Arc::new(BufferPool::new(disk, frames)),
            next_page: AtomicU64::new(1),
        }
    }

    /// Allocate a fresh page id.
    pub fn alloc(&self) -> PageId {
        PageId(self.next_page.fetch_add(1, Ordering::Relaxed))
    }
}

/// Read a node's level from slot 0.
pub fn level(page: &Page) -> u8 {
    page.get(0).map(|h| h[0]).unwrap_or(0)
}

/// Format `page` as an empty node of `level`.
pub fn format_node(page: &mut Page, lvl: u8) {
    page.format(PageType::Node);
    page.insert(0, &[lvl])
        .expect("fresh page has room for the header");
}

/// Decode an index entry's child pointer.
pub fn child_of(entry: &[u8]) -> PageId {
    PageId(u64::from_le_bytes(
        Page::entry_payload(entry).try_into().expect("8-byte child"),
    ))
}

/// Build an index entry.
pub fn index_entry(key: &[u8], child: PageId) -> Vec<u8> {
    Page::make_entry(key, &child.0.to_le_bytes())
}

/// Route within an index node: the child covering `key`.
pub fn route(page: &Page, key: &[u8]) -> StoreResult<PageId> {
    let slot = page
        .keyed_floor(key)?
        .expect("index node always has a first empty-key entry");
    Ok(child_of(page.get(slot)?))
}

/// Whether an insert of `len` more bytes (or one more entry under the cap)
/// would not fit.
pub fn is_full(page: &Page, len: usize, max_entries: usize) -> bool {
    page.entry_count() as usize >= max_entries || page.free_space() < len + 4
}

/// Split the full node under `g` at its middle entry into itself plus a new
/// right sibling. Returns `(separator, new page id)`. The caller must hold
/// whatever latches its protocol requires.
pub fn split_node(
    store: &BaseStore,
    pin: &pitree_pagestore::buffer::PinnedPage<'_>,
    g: &mut pitree_pagestore::latch::XGuard<'_, Page>,
) -> (Vec<u8>, PageId) {
    let n = g.entry_count();
    let mid = 1 + n / 2;
    let sep = Page::entry_key(g.get(mid).unwrap()).to_vec();
    let new_pid = store.alloc();
    let new_pin = store.pool.fetch_or_create(new_pid, PageType::Free).unwrap();
    {
        let mut ng = new_pin.x();
        format_node(&mut ng, level(g));
        for slot in mid..=n {
            let e = g.get(slot).unwrap().to_vec();
            ng.keyed_insert(&e).unwrap();
        }
        new_pin.mark_dirty();
    }
    for _ in mid..=n {
        let key = Page::entry_key(g.get(mid).unwrap()).to_vec();
        g.keyed_remove(&key).unwrap();
    }
    pin.mark_dirty();
    (sep, new_pid)
}

/// Grow the tree in place: move the (fixed) root's contents to a fresh
/// child, leaving the root as a one-child index node one level higher.
pub fn grow_root(
    store: &BaseStore,
    pin: &pitree_pagestore::buffer::PinnedPage<'_>,
    g: &mut pitree_pagestore::latch::XGuard<'_, Page>,
) {
    let lvl = level(g);
    let child_pid = store.alloc();
    let child = store
        .pool
        .fetch_or_create(child_pid, PageType::Free)
        .unwrap();
    {
        let mut cg = child.x();
        format_node(&mut cg, lvl);
        for slot in 1..g.slot_count() {
            let e = g.get(slot).unwrap().to_vec();
            cg.keyed_insert(&e).unwrap();
        }
        child.mark_dirty();
    }
    let keys: Vec<Vec<u8>> = (1..g.slot_count())
        .map(|s| Page::entry_key(g.get(s).unwrap()).to_vec())
        .collect();
    for k in keys {
        g.keyed_remove(&k).unwrap();
    }
    g.update(0, &[lvl + 1]).unwrap();
    g.keyed_insert(&index_entry(b"", child_pid)).unwrap();
    pin.mark_dirty();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn format_and_level() {
        let mut p = Page::new(PageType::Free);
        format_node(&mut p, 3);
        assert_eq!(level(&p), 3);
        assert_eq!(p.entry_count(), 0);
    }

    #[test]
    fn index_entry_roundtrip() {
        let e = index_entry(b"sep", PageId(99));
        assert_eq!(Page::entry_key(&e), b"sep");
        assert_eq!(child_of(&e), PageId(99));
    }

    #[test]
    fn routing_picks_floor_child() {
        let mut p = Page::new(PageType::Free);
        format_node(&mut p, 1);
        p.keyed_insert(&index_entry(b"", PageId(10))).unwrap();
        p.keyed_insert(&index_entry(b"m", PageId(20))).unwrap();
        assert_eq!(route(&p, b"a").unwrap(), PageId(10));
        assert_eq!(route(&p, b"m").unwrap(), PageId(20));
        assert_eq!(route(&p, b"z").unwrap(), PageId(20));
    }

    #[test]
    fn alloc_is_monotonic() {
        let s = BaseStore::new_mem(8);
        let a = s.alloc();
        let b = s.alloc();
        assert!(b > a);
    }
}
