// pitree-lint: allow-file(log-before-dirty) baselines are deliberately non-recoverable: no WAL, dirty pages are volatile
//! Optimistic lock coupling — the better variant from the Bayer–Schkolnick
//! family that Srinivasan & Carey \[18\] also evaluate: writers descend with
//! **S** latches like readers, take X only on the leaf, and fall back to the
//! full pessimistic X-coupled descent only when the leaf actually needs to
//! split. Interior nodes are still X-latched on every *splitting* descent —
//! the residual cost the Π-tree's decomposed postings remove.

use crate::lock_coupling::LockCouplingTree;
use crate::node::{is_full, level, route};
use crate::ConcurrentIndex;
use pitree_pagestore::page::Page;

/// Optimistic-descent wrapper over the pessimistic tree (same node layout,
/// same split machinery — only the latching protocol differs).
pub struct OptimisticCouplingTree {
    inner: LockCouplingTree,
}

impl std::fmt::Debug for OptimisticCouplingTree {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OptimisticCouplingTree")
            .finish_non_exhaustive()
    }
}

impl OptimisticCouplingTree {
    /// Create an empty tree with at most `max_entries` entries per node.
    pub fn new(frames: usize, max_entries: usize) -> OptimisticCouplingTree {
        OptimisticCouplingTree {
            inner: LockCouplingTree::new(frames, max_entries),
        }
    }

    /// Exclusive latchings of non-leaf nodes (E1's footprint metric): only
    /// the pessimistic fallback descents contribute.
    pub fn upper_exclusive(&self) -> u64 {
        self.inner.upper_exclusive()
    }

    /// Optimistic attempt: S-couple down, X only at the leaf; fails (false)
    /// when the leaf has no room — the caller then retries pessimistically.
    fn try_insert_optimistic(&self, key: &[u8], entry: &[u8]) -> bool {
        let pool = &self.inner.pool();
        let mut _keepalive = pool.fetch(self.inner.root_pid()).unwrap();
        let mut g = _keepalive.s();
        while level(&g) > 0 {
            let child = route(&g, key).unwrap();
            let cpin = pool.fetch(child).unwrap();
            // X only when the child is the leaf; S otherwise.
            if level(&g) == 1 {
                let cg = cpin.x();
                drop(g);
                // Leaf reached under X.
                let mut cg = cg;
                if cg.keyed_find(key).unwrap().is_ok() {
                    cg.keyed_update(entry).unwrap();
                    cpin.mark_dirty();
                    return true;
                }
                if is_full(&cg, entry.len(), self.inner.max_entries()) {
                    return false; // fall back to the pessimistic path
                }
                cg.keyed_insert(entry).unwrap();
                cpin.mark_dirty();
                return true;
            }
            let cg = cpin.s();
            drop(g);
            _keepalive = cpin;
            g = cg;
        }
        // Height-1 tree: the root is the leaf; S cannot be promoted, so use
        // the pessimistic path.
        false
    }
}

impl ConcurrentIndex for OptimisticCouplingTree {
    fn insert(&self, key: &[u8], value: &[u8]) {
        let entry = Page::make_entry(key, value);
        if self.try_insert_optimistic(key, &entry) {
            return;
        }
        // Pessimistic retry: full X-coupled descent handles the split.
        self.inner.insert(key, value);
    }

    fn get(&self, key: &[u8]) -> Option<Vec<u8>> {
        self.inner.get(key)
    }

    fn delete(&self, key: &[u8]) -> bool {
        self.inner.delete(key)
    }

    fn name(&self) -> &'static str {
        "optimistic-coupling"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn key(i: u64) -> Vec<u8> {
        i.to_be_bytes().to_vec()
    }

    #[test]
    fn insert_get_roundtrip() {
        let t = OptimisticCouplingTree::new(256, 6);
        for i in 0..300u64 {
            t.insert(&key(i), format!("v{i}").as_bytes());
        }
        for i in 0..300u64 {
            assert_eq!(
                t.get(&key(i)),
                Some(format!("v{i}").into_bytes()),
                "key {i}"
            );
        }
        assert_eq!(t.get(&key(999)), None);
    }

    #[test]
    fn optimistic_path_skips_interior_x() {
        let t = OptimisticCouplingTree::new(512, 32);
        // Warm up past height 1 (root-leaf inserts go pessimistic).
        for i in 0..100u64 {
            t.insert(&key(i), b"v");
        }
        let before = t.upper_exclusive();
        // Non-splitting inserts must not X interior nodes at all.
        for i in 1000..1020u64 {
            t.insert(&key(i), b"v");
        }
        let after = t.upper_exclusive();
        assert!(
            after - before <= 2,
            "non-splitting optimistic inserts must avoid interior X latches \
             (delta {})",
            after - before
        );
    }

    #[test]
    fn concurrent_inserts() {
        let t = Arc::new(OptimisticCouplingTree::new(1024, 8));
        std::thread::scope(|s| {
            for tid in 0..8u64 {
                let t = Arc::clone(&t);
                s.spawn(move || {
                    for i in 0..200 {
                        t.insert(&key(i * 8 + tid), b"v");
                    }
                });
            }
        });
        for k in 0..1600u64 {
            assert_eq!(t.get(&key(k)), Some(b"v".to_vec()), "key {k}");
        }
    }

    #[test]
    fn replace_and_delete() {
        let t = OptimisticCouplingTree::new(64, 6);
        t.insert(b"k", b"v1");
        t.insert(b"k", b"v2");
        assert_eq!(t.get(b"k"), Some(b"v2".to_vec()));
        assert!(t.delete(b"k"));
        assert!(!t.delete(b"k"));
    }
}
