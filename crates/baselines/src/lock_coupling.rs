// pitree-lint: allow-file(log-before-dirty) baselines are deliberately non-recoverable: no WAL, dirty pages are volatile
//! Lock-coupling B+-tree \[Bayer & Schkolnick 1977\], the classic baseline.
//!
//! Readers couple S latches down the path. Writers couple **X latches** and
//! release an ancestor stack only when the just-latched child is *safe*
//! (cannot split); when a leaf splits, every unsafe ancestor on the path is
//! still X-latched, and separators propagate into them directly. A root that
//! stays on the path for the whole descent serializes all writers through
//! it — the behaviour the Π-tree's side pointers eliminate, and exactly what
//! experiment E1 measures.

use crate::node::{
    format_node, grow_root, index_entry, is_full, level, route, split_node, BaseStore,
};
use crate::ConcurrentIndex;
use pitree_pagestore::buffer::PinnedPage;
use pitree_pagestore::latch::XGuard;
use pitree_pagestore::page::{Page, PageType};
use pitree_pagestore::PageId;

/// A B+-tree protected by latch coupling.
pub struct LockCouplingTree {
    store: BaseStore,
    root: PageId,
    max_entries: usize,
    /// Exclusive latchings of non-leaf nodes (concurrency-footprint metric).
    upper_x: std::sync::atomic::AtomicU64,
}

impl std::fmt::Debug for LockCouplingTree {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LockCouplingTree").finish_non_exhaustive()
    }
}

impl LockCouplingTree {
    /// Create an empty tree. `max_entries` caps entries per node (use small
    /// values to force deep trees in tests).
    pub fn new(frames: usize, max_entries: usize) -> LockCouplingTree {
        let store = BaseStore::new_mem(frames);
        let root = store.alloc();
        {
            let page = store.pool.fetch_or_create(root, PageType::Free).unwrap();
            let mut g = page.x();
            format_node(&mut g, 0);
            page.mark_dirty();
        }
        LockCouplingTree {
            store,
            root,
            max_entries,
            upper_x: std::sync::atomic::AtomicU64::new(0),
        }
    }
}

impl LockCouplingTree {
    /// Exclusive latchings of non-leaf nodes so far.
    pub fn upper_exclusive(&self) -> u64 {
        self.upper_x.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// The shared buffer pool (used by the optimistic wrapper).
    pub fn pool(&self) -> &std::sync::Arc<pitree_pagestore::buffer::BufferPool> {
        &self.store.pool
    }

    /// The fixed root page.
    pub fn root_pid(&self) -> PageId {
        self.root
    }

    /// The entry-count cap.
    pub fn max_entries(&self) -> usize {
        self.max_entries
    }

    fn note_upper(&self, g: &XGuard<'_, Page>) {
        if level(g) > 0 {
            self.upper_x
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        }
    }
}

impl ConcurrentIndex for LockCouplingTree {
    fn insert(&self, key: &[u8], value: &[u8]) {
        let entry = Page::make_entry(key, value);
        // Safety margin for the descent check: an index node must also have
        // room for a *separator* entry (key + child pointer), which can be
        // longer than the record entry.
        let safe_len = entry.len().max(key.len() + 16);
        let pool = &self.store.pool;
        // Descend with X coupling, keeping unsafe ancestors latched.
        let mut stack: Vec<(PinnedPage<'_>, XGuard<'_, Page>)> = Vec::new();
        let mut pin = pool.fetch(self.root).unwrap();
        let mut g = pin.x();
        self.note_upper(&g);
        loop {
            if !is_full(&g, safe_len, self.max_entries) {
                stack.clear(); // safe: split propagation stops here
            }
            if level(&g) == 0 {
                break;
            }
            let child = route(&g, key).unwrap();
            let cpin = pool.fetch(child).unwrap();
            let cg = cpin.x();
            self.note_upper(&cg);
            stack.push((pin, g));
            pin = cpin;
            g = cg;
        }
        // Replace in place when the key exists.
        if g.keyed_find(key).unwrap().is_ok() {
            g.keyed_update(&entry).unwrap();
            pin.mark_dirty();
            return;
        }
        // Insert, splitting upward through the latched unsafe ancestors.
        // `carry` is the entry destined for the node currently latched in
        // `g` — the record at the leaf, separators above it.
        let mut carry = entry;
        loop {
            let carry_key = Page::entry_key(&carry).to_vec();
            if !is_full(&g, carry.len(), self.max_entries) {
                g.keyed_insert(&carry).unwrap();
                pin.mark_dirty();
                return;
            }
            if pin.id() == self.root && stack.is_empty() {
                // A full root grows in place; the carry then targets the new
                // single child, which the next iteration splits.
                grow_root(&self.store, &pin, &mut g);
                let child = route(&g, &carry_key).unwrap();
                let cpin = pool.fetch(child).unwrap();
                let cg = cpin.x();
                stack.push((pin, g));
                pin = cpin;
                g = cg;
                continue;
            }
            let (sep, new_pid) = split_node(&self.store, &pin, &mut g);
            // Place the carried entry in the correct half.
            if carry_key.as_slice() >= sep.as_slice() {
                let new_pin = pool.fetch(new_pid).unwrap();
                let mut ng = new_pin.x();
                ng.keyed_insert(&carry).unwrap();
                new_pin.mark_dirty();
            } else {
                g.keyed_insert(&carry).unwrap();
                pin.mark_dirty();
            }
            // The separator propagates to the parent, which is still latched
            // (it was unsafe, or it is the root handled above).
            let (ppin, pg) = stack.pop().expect("unsafe ancestors stay latched");
            drop(g);
            drop(pin);
            pin = ppin;
            g = pg;
            carry = index_entry(&sep, new_pid);
        }
    }

    fn get(&self, key: &[u8]) -> Option<Vec<u8>> {
        let pool = &self.store.pool;
        let mut _keepalive = pool.fetch(self.root).unwrap();
        let mut g = _keepalive.s();
        while level(&g) > 0 {
            let child = route(&g, key).unwrap();
            let cpin = pool.fetch(child).unwrap();
            let cg = cpin.s(); // couple: child latched before parent released
            drop(g);
            _keepalive = cpin;
            g = cg;
        }
        match g.keyed_find(key).unwrap() {
            Ok(slot) => Some(Page::entry_payload(g.get(slot).unwrap()).to_vec()),
            Err(_) => None,
        }
    }

    fn delete(&self, key: &[u8]) -> bool {
        let pool = &self.store.pool;
        let mut _keepalive = pool.fetch(self.root).unwrap();
        let mut g = _keepalive.x();
        self.note_upper(&g);
        while level(&g) > 0 {
            let child = route(&g, key).unwrap();
            let cpin = pool.fetch(child).unwrap();
            let cg = cpin.x();
            self.note_upper(&cg);
            drop(g);
            _keepalive = cpin;
            g = cg;
        }
        match g.keyed_find(key).unwrap() {
            Ok(_) => {
                g.keyed_remove(key).unwrap();
                _keepalive.mark_dirty();
                true
            }
            Err(_) => false,
        }
    }

    fn name(&self) -> &'static str {
        "lock-coupling"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn key(i: u64) -> Vec<u8> {
        i.to_be_bytes().to_vec()
    }

    #[test]
    fn insert_get_roundtrip() {
        let t = LockCouplingTree::new(256, 6);
        for i in 0..200u64 {
            t.insert(&key(i), format!("v{i}").as_bytes());
        }
        for i in 0..200u64 {
            assert_eq!(
                t.get(&key(i)),
                Some(format!("v{i}").into_bytes()),
                "key {i}"
            );
        }
        assert_eq!(t.get(&key(999)), None);
    }

    #[test]
    fn replace_and_delete() {
        let t = LockCouplingTree::new(64, 6);
        t.insert(b"k", b"v1");
        t.insert(b"k", b"v2");
        assert_eq!(t.get(b"k"), Some(b"v2".to_vec()));
        assert!(t.delete(b"k"));
        assert!(!t.delete(b"k"));
        assert_eq!(t.get(b"k"), None);
    }

    #[test]
    fn reverse_and_random_orders() {
        let t = LockCouplingTree::new(512, 5);
        let mut keys: Vec<u64> = (0..400).collect();
        pitree_sim::SimRng::new(0xBA5E1).shuffle(&mut keys);
        for &i in &keys {
            t.insert(&key(i), b"x");
        }
        for i in 0..400u64 {
            assert_eq!(t.get(&key(i)), Some(b"x".to_vec()), "key {i}");
        }
    }

    #[test]
    fn concurrent_inserts() {
        let t = Arc::new(LockCouplingTree::new(1024, 8));
        std::thread::scope(|s| {
            for tid in 0..8u64 {
                let t = Arc::clone(&t);
                s.spawn(move || {
                    for i in 0..200 {
                        t.insert(&key(i * 8 + tid), b"v");
                    }
                });
            }
        });
        for k in 0..1600u64 {
            assert_eq!(t.get(&key(k)), Some(b"v".to_vec()), "key {k}");
        }
    }
}
